package simweb

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"permadead/internal/simclock"
)

// faultWorld builds a world with one healthy page on flaky.simtest and
// one fault window covering StudyTime with the given mode and rate.
func faultWorld(mode FaultMode, rate float64, retryAfter int) *World {
	w := NewWorld()
	created := simclock.FromDate(2008, 1, 1)
	s := w.AddSite("flaky.simtest", created)
	s.AddPage("/page.html", created)
	s.Faults = []FaultWindow{{
		From:          simclock.StudyTime.Add(-10),
		To:            simclock.StudyTime.Add(10),
		Mode:          mode,
		Rate:          rate,
		RetryAfterSec: retryAfter,
		Seed:          7,
	}}
	return w
}

func TestFaultWindowActiveOn(t *testing.T) {
	fw := FaultWindow{From: 100, To: 110}
	for day, want := range map[simclock.Day]bool{
		99: false, 100: true, 109: true, 110: false,
	} {
		if got := fw.ActiveOn(day); got != want {
			t.Errorf("ActiveOn(%d) = %v, want %v", day, got, want)
		}
	}
	open := FaultWindow{From: 100, To: simclock.Never}
	if !open.ActiveOn(100000) {
		t.Error("open-ended window should stay active")
	}
}

func TestFaultDecisionsDeterministic(t *testing.T) {
	w := faultWorld(FaultServerBusy, 0.5, 0)
	day := simclock.StudyTime
	for attempt := 0; attempt < 8; attempt++ {
		a := w.GetAttempt("http://flaky.simtest/page.html", day, attempt)
		b := w.GetAttempt("http://flaky.simtest/page.html", day, attempt)
		if a.Kind != b.Kind || a.Status != b.Status {
			t.Fatalf("attempt %d not deterministic: %+v vs %+v", attempt, a, b)
		}
	}
	// At rate 0.5 across 64 (day, attempt) pairs, both outcomes must
	// appear — otherwise the hash is not mixing.
	var faulted, clean int
	for attempt := 0; attempt < 64; attempt++ {
		if res := w.GetAttempt("http://flaky.simtest/page.html", day, attempt); res.Status == 503 {
			faulted++
		} else {
			clean++
		}
	}
	if faulted == 0 || clean == 0 {
		t.Errorf("rate-0.5 window produced faulted=%d clean=%d over 64 attempts", faulted, clean)
	}
}

func TestFaultModes(t *testing.T) {
	day := simclock.StudyTime
	url := "http://flaky.simtest/page.html"

	res := faultWorld(FaultServerBusy, 1, 0).Get(url, day)
	if res.Kind != KindResponse || res.Status != 503 {
		t.Errorf("busy: %+v", res)
	}
	if res.RetryAfterSec != 120 {
		t.Errorf("busy Retry-After default = %d, want 120", res.RetryAfterSec)
	}

	res = faultWorld(FaultRateLimit, 1, 30).Get(url, day)
	if res.Kind != KindResponse || res.Status != 429 || res.RetryAfterSec != 30 {
		t.Errorf("rate limit: %+v", res)
	}

	if res = faultWorld(FaultTimeout, 1, 0).Get(url, day); res.Kind != KindTimeout {
		t.Errorf("timeout: %+v", res)
	}
	if res = faultWorld(FaultDNSFlap, 1, 0).Get(url, day); res.Kind != KindDNSFailure {
		t.Errorf("dns flap: %+v", res)
	}
}

// TestScenarioFaultModes exercises the lifecycle-scenario windows:
// paywall (402), geo-block (403), and parking — the last one a 200
// whose body only content inspection can flag.
func TestScenarioFaultModes(t *testing.T) {
	day := simclock.StudyTime
	url := "http://flaky.simtest/page.html"

	res := faultWorld(FaultPaywall, 1, 0).Get(url, day)
	if res.Kind != KindResponse || res.Status != 402 || !strings.Contains(res.Body, "Subscribe") {
		t.Errorf("paywall: %+v", res)
	}
	res = faultWorld(FaultGeoBlock, 1, 0).Get(url, day)
	if res.Kind != KindResponse || res.Status != 403 || !strings.Contains(res.Body, "region") {
		t.Errorf("geo-block: %+v", res)
	}
	res = faultWorld(FaultParking, 1, 0).Get(url, day)
	if res.Kind != KindResponse || res.Status != 200 {
		t.Errorf("parking: %+v", res)
	}
	if !strings.Contains(strings.ToLower(res.Body), "domain may be for sale") {
		t.Errorf("parked body lacks parking markers: %q", res.Body)
	}
	// Scenario windows still respect attempts and bounds: the ground
	// truth and post-window checks see the real page.
	w := faultWorld(FaultParking, 1, 0)
	if r := w.GetAttempt(url, day, NoFaultAttempt); r.Status != 200 || strings.Contains(r.Body, "for sale") {
		t.Errorf("ground truth saw the parked page: %+v", r)
	}
	if r := w.Get(url, simclock.StudyTime.Add(20)); r.Status != 200 || strings.Contains(r.Body, "for sale") {
		t.Errorf("post-window check saw the parked page: %+v", r)
	}
	for _, mode := range []FaultMode{FaultPaywall, FaultGeoBlock, FaultParking} {
		if mode.String() == "unknown" {
			t.Errorf("mode %d has no name", mode)
		}
	}
}

func TestFaultOutsideWindowAndBypass(t *testing.T) {
	w := faultWorld(FaultServerBusy, 1, 0)
	url := "http://flaky.simtest/page.html"

	// Outside the window the page is fine.
	if res := w.Get(url, simclock.StudyTime.Add(20)); res.Status != 200 {
		t.Errorf("outside window: %+v", res)
	}
	// NoFaultAttempt bypasses an always-firing window.
	if res := w.GetAttempt(url, simclock.StudyTime, NoFaultAttempt); res.Status != 200 {
		t.Errorf("NoFaultAttempt: %+v", res)
	}
	// Zero-rate windows never fire.
	w2 := faultWorld(FaultServerBusy, 0, 0)
	if res := w2.Get(url, simclock.StudyTime); res.Status != 200 {
		t.Errorf("rate 0: %+v", res)
	}
}

func TestGetEqualsGetAttemptZeroWithoutFaults(t *testing.T) {
	w := NewWorld()
	created := simclock.FromDate(2008, 1, 1)
	s := w.AddSite("plain.simtest", created)
	s.AddPage("/p.html", created)
	for _, day := range []simclock.Day{created, simclock.StudyTime} {
		a := w.Get("http://plain.simtest/p.html", day)
		b := w.GetAttempt("http://plain.simtest/p.html", day, 0)
		if a != b {
			t.Errorf("day %d: Get != GetAttempt(0): %+v vs %+v", day, a, b)
		}
	}
}

func TestTransportFaultInjection(t *testing.T) {
	w := faultWorld(FaultServerBusy, 1, 45)
	tr := NewTransport(w, simclock.StudyTime)
	req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, "http://flaky.simtest/page.html", nil)
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") != "45" {
		t.Errorf("status=%d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// The fault-free transport sees through the same window.
	ff := NewFaultFreeTransport(w, simclock.StudyTime)
	resp, err = ff.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("fault-free status = %d", resp.StatusCode)
	}
}

func TestTransportAttemptHeader(t *testing.T) {
	w := faultWorld(FaultServerBusy, 0.5, 0)
	tr := NewTransport(w, simclock.StudyTime)
	url := "http://flaky.simtest/page.html"

	// Header-carried attempts must match direct GetAttempt calls.
	for attempt := 0; attempt < 8; attempt++ {
		want := w.GetAttempt(url, simclock.StudyTime, attempt)
		req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
		if attempt > 0 {
			req.Header.Set(AttemptHeader, strconv.Itoa(attempt))
		}
		resp, err := tr.RoundTrip(req)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want.Status {
			t.Errorf("attempt %d: transport=%d direct=%d", attempt, resp.StatusCode, want.Status)
		}
	}

	// A malformed attempt header is an error, like a malformed day.
	req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	req.Header.Set(AttemptHeader, "banana")
	if _, err := tr.RoundTrip(req); err == nil || !strings.Contains(err.Error(), AttemptHeader) {
		t.Errorf("bad attempt header: err = %v", err)
	}
}

func TestHeadContentLength(t *testing.T) {
	w := NewWorld()
	created := simclock.FromDate(2008, 1, 1)
	s := w.AddSite("ok.simtest", created)
	s.AddPage("/page.html", created)
	tr := NewTransport(w, simclock.StudyTime)

	get, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, "http://ok.simtest/page.html", nil)
	gresp, err := tr.RoundTrip(get)
	if err != nil {
		t.Fatal(err)
	}
	gbody := readAll(t, gresp)
	if len(gbody) == 0 {
		t.Fatal("GET body empty")
	}

	head, _ := http.NewRequestWithContext(context.Background(), http.MethodHead, "http://ok.simtest/page.html", nil)
	hresp, err := tr.RoundTrip(head)
	if err != nil {
		t.Fatal(err)
	}
	hbody := readAll(t, hresp)
	if len(hbody) != 0 {
		t.Errorf("HEAD body = %d bytes, want empty", len(hbody))
	}
	// Real servers answer HEAD with the GET entity's Content-Length.
	if got, want := hresp.Header.Get("Content-Length"), gresp.Header.Get("Content-Length"); got != want || got == "0" {
		t.Errorf("HEAD Content-Length = %q, GET = %q", got, want)
	}
	if hresp.ContentLength != int64(len(gbody)) {
		t.Errorf("HEAD ContentLength = %d, want %d", hresp.ContentLength, len(gbody))
	}
}

func TestTimeoutErrorAddr(t *testing.T) {
	w := NewWorld()
	created := simclock.FromDate(2008, 1, 1)
	s := w.AddSite("hang.simtest", created)
	s.TimeoutFrom = created
	tr := NewTransport(w, simclock.StudyTime)

	for _, tc := range []struct{ url, wantAddr string }{
		{"http://hang.simtest/", "hang.simtest:80"},
		{"https://hang.simtest/", "hang.simtest:443"},
		{"http://hang.simtest:8080/", "hang.simtest:8080"},
	} {
		req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, tc.url, nil)
		_, err := tr.RoundTrip(req)
		if err == nil {
			t.Fatalf("%s: expected timeout", tc.url)
		}
		if !strings.Contains(err.Error(), tc.wantAddr) {
			t.Errorf("%s: err %q missing %q", tc.url, err, tc.wantAddr)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

func TestSuspectUntil(t *testing.T) {
	s := &Site{Hostname: "flaky.simtest"}
	if _, suspect := s.SuspectUntil(100); suspect {
		t.Fatal("site without windows should never be suspect")
	}
	s.Faults = []FaultWindow{
		{From: 90, To: 110, Mode: FaultServerBusy, Rate: 0.5, Seed: 1},
		{From: 95, To: 130, Mode: FaultTimeout, Rate: 0.5, Seed: 2},
		{From: 200, To: 210, Mode: FaultRateLimit, Rate: 0.5, Seed: 3},
	}
	until, suspect := s.SuspectUntil(100)
	if !suspect || until != 130 {
		t.Errorf("SuspectUntil(100) = %v, %v; want 130, true (latest active window end)", until, suspect)
	}
	if until, suspect := s.SuspectUntil(205); !suspect || until != 210 {
		t.Errorf("SuspectUntil(205) = %v, %v; want 210, true", until, suspect)
	}
	if _, suspect := s.SuspectUntil(150); suspect {
		t.Error("gap day between windows should not be suspect")
	}
	// A zero-rate window never fires and therefore never casts doubt.
	s.Faults = []FaultWindow{{From: 90, To: 110, Rate: 0}}
	if _, suspect := s.SuspectUntil(100); suspect {
		t.Error("zero-rate window should not be suspect")
	}
	// An open-ended window has no expiry: suspect forever.
	s.Faults = []FaultWindow{{From: 90, To: simclock.Never, Rate: 0.5}}
	until, suspect = s.SuspectUntil(100)
	if !suspect || until.Valid() {
		t.Errorf("open-ended window: SuspectUntil = %v, %v; want never, true", until, suspect)
	}
}
