package simweb

import (
	"strings"
	"testing"
	"time"

	"permadead/internal/simclock"
)

func day(y int, m time.Month, d int) simclock.Day {
	return simclock.FromDate(y, m, d)
}

// buildWorld creates a small world exercising every lifecycle state.
func buildWorld() *World {
	w := NewWorld()

	// Healthy site with one article page.
	healthy := w.AddSite("news.example.simnews", day(2008, 1, 1))
	healthy.AddPage("/articles/alpha.html", day(2009, 5, 1))

	// Site whose DNS lapses in 2020.
	dead := w.AddSite("gone.example.simnews", day(2008, 1, 1))
	dead.DNSDiesAt = day(2020, 6, 1)
	dead.AddPage("/page.html", day(2009, 1, 1))

	// Site whose server hangs from 2021.
	hang := w.AddSite("hang.example.simnews", day(2010, 1, 1))
	hang.TimeoutFrom = day(2021, 1, 1)

	// Parked domain from 2019.
	parked := w.AddSite("parked.example.simnews", day(2008, 1, 1))
	parked.ParkedAt = day(2019, 3, 1)
	parked.AddPage("/old/content.html", day(2009, 1, 1))

	// Page that moves in 2018; redirect installed in 2021.
	mv := w.AddSite("moved.example.simnews", day(2008, 1, 1))
	pg := mv.AddPage("/artists/steve.html", day(2010, 1, 1))
	pg.MovedAt = day(2018, 4, 1)
	pg.NewPath = "/portfolio/steve/"
	pg.RedirectFrom = day(2021, 2, 1)
	mv.AddPage("/portfolio/steve/", day(2018, 4, 1))

	// Soft-404 site: missing pages redirect home.
	soft := w.AddSite("soft.example.simnews", day(2008, 1, 1))
	soft.ErrorStyle = SoftRedirectHome
	del := soft.AddPage("/story/123.html", day(2010, 1, 1))
	del.DeletedAt = day(2015, 1, 1)

	// Soft200 site: missing pages answer 200 boilerplate.
	s200 := w.AddSite("soft200.example.simnews", day(2008, 1, 1))
	s200.ErrorStyle = Soft200

	// Login-redirect site.
	login := w.AddSite("login.example.simnews", day(2008, 1, 1))
	login.ErrorStyle = LoginRedirect

	// Geo-blocked site.
	geo := w.AddSite("geo.example.simnews", day(2008, 1, 1))
	geo.GeoBlockedFrom = day(2016, 1, 1)

	// Site with a 503 outage window around the study date.
	out := w.AddSite("outage.example.simnews", day(2008, 1, 1))
	out.OutageFrom = day(2022, 3, 1)
	out.OutageTo = day(2022, 4, 1)

	return w
}

func TestHealthyPage(t *testing.T) {
	w := buildWorld()
	res := w.Get("http://news.example.simnews/articles/alpha.html", simclock.StudyTime)
	if res.Kind != KindResponse || res.Status != 200 {
		t.Fatalf("healthy page: %+v", res)
	}
	if !strings.Contains(res.Body, "<html>") {
		t.Error("body should be HTML")
	}
	// Deterministic body.
	res2 := w.Get("http://news.example.simnews/articles/alpha.html", simclock.StudyTime)
	if res.Body != res2.Body {
		t.Error("bodies differ across identical requests")
	}
	// Different URLs get different bodies.
	home := w.Get("http://news.example.simnews/", simclock.StudyTime)
	if home.Body == res.Body {
		t.Error("different pages share a body")
	}
}

func TestPageBeforeCreation(t *testing.T) {
	w := buildWorld()
	res := w.Get("http://news.example.simnews/articles/alpha.html", day(2009, 4, 30))
	if res.Status != 404 {
		t.Errorf("page before creation: got %d, want 404", res.Status)
	}
}

func TestDNSLifecycle(t *testing.T) {
	w := buildWorld()
	// Before site creation: no DNS.
	if res := w.Get("http://gone.example.simnews/page.html", day(2007, 1, 1)); res.Kind != KindDNSFailure {
		t.Errorf("pre-creation: %+v", res)
	}
	// While alive: 200.
	if res := w.Get("http://gone.example.simnews/page.html", day(2015, 1, 1)); res.Status != 200 {
		t.Errorf("alive: %+v", res)
	}
	// After DNS death: failure.
	if res := w.Get("http://gone.example.simnews/page.html", simclock.StudyTime); res.Kind != KindDNSFailure {
		t.Errorf("post-death: %+v", res)
	}
	// Unknown host: failure.
	if res := w.Get("http://nonexistent.simnews/", simclock.StudyTime); res.Kind != KindDNSFailure {
		t.Errorf("unknown host: %+v", res)
	}
}

func TestTimeout(t *testing.T) {
	w := buildWorld()
	if res := w.Get("http://hang.example.simnews/", day(2020, 1, 1)); res.Kind != KindResponse {
		t.Errorf("before hang: %+v", res)
	}
	if res := w.Get("http://hang.example.simnews/", simclock.StudyTime); res.Kind != KindTimeout {
		t.Errorf("after hang: %+v", res)
	}
}

func TestParkedDomain(t *testing.T) {
	w := buildWorld()
	before := w.Get("http://parked.example.simnews/old/content.html", day(2015, 1, 1))
	if before.Status != 200 || strings.Contains(before.Body, "for sale") {
		t.Errorf("before parking: %+v", before)
	}
	after := w.Get("http://parked.example.simnews/old/content.html", simclock.StudyTime)
	if after.Status != 200 || !strings.Contains(after.Body, "for sale") {
		t.Errorf("after parking: %+v", after)
	}
	// All paths serve the identical parked page.
	other := w.Get("http://parked.example.simnews/anything/else", simclock.StudyTime)
	if other.Body != after.Body {
		t.Error("parked pages should be identical across paths")
	}
}

func TestMovedPageLifecycle(t *testing.T) {
	w := buildWorld()
	url := "http://moved.example.simnews/artists/steve.html"
	// Working at the original URL before the move.
	if res := w.Get(url, day(2015, 1, 1)); res.Status != 200 {
		t.Errorf("before move: %+v", res)
	}
	// Broken (404) between move and redirect installation — the state
	// in which IABot marks the link permanently dead.
	if res := w.Get(url, day(2019, 1, 1)); res.Status != 404 {
		t.Errorf("after move, before redirect: %+v", res)
	}
	// Redirecting once the site installs the mapping (§3's fishman.com
	// example).
	res := w.Get(url, simclock.StudyTime)
	if res.Status != 301 || res.Location != "/portfolio/steve/" {
		t.Errorf("after redirect installed: %+v", res)
	}
	// And the new URL works.
	if res := w.Get("http://moved.example.simnews/portfolio/steve/", simclock.StudyTime); res.Status != 200 {
		t.Errorf("new URL: %+v", res)
	}
}

func TestSoftRedirectHome(t *testing.T) {
	w := buildWorld()
	// Deleted page redirects to the homepage.
	res := w.Get("http://soft.example.simnews/story/123.html", simclock.StudyTime)
	if res.Status != 302 || res.Location != "/" {
		t.Errorf("deleted page on soft site: %+v", res)
	}
	// Before deletion it worked.
	if res := w.Get("http://soft.example.simnews/story/123.html", day(2014, 1, 1)); res.Status != 200 {
		t.Errorf("before deletion: %+v", res)
	}
	// Missing pages share the same redirect target.
	res2 := w.Get("http://soft.example.simnews/story/999.html", simclock.StudyTime)
	if res2.Status != 302 || res2.Location != res.Location {
		t.Errorf("missing page: %+v", res2)
	}
}

func TestSoft200(t *testing.T) {
	w := buildWorld()
	a := w.Get("http://soft200.example.simnews/missing/a.html", simclock.StudyTime)
	b := w.Get("http://soft200.example.simnews/missing/b.html", simclock.StudyTime)
	if a.Status != 200 || b.Status != 200 {
		t.Fatalf("soft200 statuses: %d, %d", a.Status, b.Status)
	}
	if a.Body != b.Body {
		t.Error("soft200 bodies should be identical across missing paths")
	}
}

func TestLoginRedirect(t *testing.T) {
	w := buildWorld()
	res := w.Get("http://login.example.simnews/private/doc.html", simclock.StudyTime)
	if res.Status != 302 || res.Location != "/login" {
		t.Errorf("login redirect: %+v", res)
	}
	login := w.Get("http://login.example.simnews/login", simclock.StudyTime)
	if login.Status != 200 || !strings.Contains(login.Body, "password") {
		t.Errorf("login page: %+v", login)
	}
}

func TestGeoBlockAndOutage(t *testing.T) {
	w := buildWorld()
	if res := w.Get("http://geo.example.simnews/", simclock.StudyTime); res.Status != 403 {
		t.Errorf("geo-blocked: %+v", res)
	}
	if res := w.Get("http://outage.example.simnews/", day(2022, 3, 15)); res.Status != 503 {
		t.Errorf("during outage: %+v", res)
	}
	if res := w.Get("http://outage.example.simnews/", day(2022, 5, 1)); res.Status != 200 {
		t.Errorf("after outage: %+v", res)
	}
}

func TestQueryStringsAreDistinctPages(t *testing.T) {
	w := NewWorld()
	s := w.AddSite("q.example.simnews", day(2008, 1, 1))
	s.AddPage("/article.asp?id=1", day(2010, 1, 1))
	if res := w.Get("http://q.example.simnews/article.asp?id=1", simclock.StudyTime); res.Status != 200 {
		t.Errorf("existing query page: %+v", res)
	}
	if res := w.Get("http://q.example.simnews/article.asp?id=2", simclock.StudyTime); res.Status != 404 {
		t.Errorf("other query value should 404: %+v", res)
	}
	if res := w.Get("http://q.example.simnews/article.asp", simclock.StudyTime); res.Status != 404 {
		t.Errorf("query-less URL should 404: %+v", res)
	}
}

func TestDuplicateSitePanics(t *testing.T) {
	w := NewWorld()
	w.AddSite("dup.example.simnews", 0)
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddSite should panic")
		}
	}()
	w.AddSite("dup.example.simnews", 0)
}

func TestResolveLocation(t *testing.T) {
	cases := []struct{ scheme, host, loc, want string }{
		{"http", "h.com", "/x", "http://h.com/x"},
		{"https", "h.com", "/x", "https://h.com/x"},
		{"http", "h.com", "http://other.com/y", "http://other.com/y"},
		{"http", "h.com", "x", "http://h.com/x"},
	}
	for _, c := range cases {
		if got := ResolveLocation(c.scheme, c.host, c.loc); got != c.want {
			t.Errorf("ResolveLocation(%q,%q,%q) = %q, want %q", c.scheme, c.host, c.loc, got, c.want)
		}
	}
}

func TestWorldAccessors(t *testing.T) {
	w := buildWorld()
	if w.Sites() != 10 {
		t.Errorf("Sites = %d", w.Sites())
	}
	hs := w.Hostnames()
	if len(hs) != 10 {
		t.Errorf("Hostnames = %d", len(hs))
	}
	for i := 1; i < len(hs); i++ {
		if hs[i-1] >= hs[i] {
			t.Error("Hostnames not sorted")
		}
	}
	site, page := w.PageByURL("http://news.example.simnews/articles/alpha.html")
	if site == nil || page == nil {
		t.Fatal("PageByURL failed")
	}
	if page.Path != "/articles/alpha.html" {
		t.Errorf("page path = %q", page.Path)
	}
	n := 0
	w.EachSite(func(*Site) { n++ })
	if n != 10 {
		t.Errorf("EachSite visited %d", n)
	}
}

func TestSitePageHelpers(t *testing.T) {
	s := NewSite("x.simtest", 0)
	if s.Pages() != 1 { // implicit homepage
		t.Errorf("new site pages = %d", s.Pages())
	}
	s.AddPage("no-slash", 5)
	if s.Page("/no-slash") == nil {
		t.Error("AddPage should normalize missing leading slash")
	}
	count := 0
	s.EachPage(func(*Page) { count++ })
	if count != 2 {
		t.Errorf("EachPage visited %d", count)
	}
}

func TestRestoredPage(t *testing.T) {
	w := NewWorld()
	s := w.AddSite("restore.simtest", day(2008, 1, 1))
	pg := s.AddPage("/p.html", day(2008, 1, 1))
	pg.DeletedAt = day(2015, 1, 1)
	pg.RestoredAt = day(2020, 1, 1)
	url := "http://restore.simtest/p.html"

	if res := w.Get(url, day(2014, 1, 1)); res.Status != 200 {
		t.Errorf("before deletion: %+v", res)
	}
	if res := w.Get(url, day(2017, 1, 1)); res.Status != 404 {
		t.Errorf("while deleted: %+v", res)
	}
	// §3: a "permanently dead" link that works again, without any
	// redirect involved.
	if res := w.Get(url, simclock.StudyTime); res.Status != 200 {
		t.Errorf("after restore: %+v", res)
	}
}

func TestRedirectWindow(t *testing.T) {
	w := NewWorld()
	s := w.AddSite("window.simtest", day(2008, 1, 1))
	pg := s.AddPage("/old.html", day(2008, 1, 1))
	pg.MovedAt = day(2012, 1, 1)
	pg.NewPath = "/new.html"
	pg.RedirectFrom = day(2012, 1, 1)
	pg.RedirectUntil = day(2016, 1, 1)
	s.AddPage("/new.html", day(2012, 1, 1))
	url := "http://window.simtest/old.html"

	if res := w.Get(url, day(2011, 1, 1)); res.Status != 200 {
		t.Errorf("before move: %+v", res)
	}
	// During the window: the valid redirection an archive capture
	// would record (§4.2).
	if res := w.Get(url, day(2014, 1, 1)); res.Status != 301 || res.Location != "/new.html" {
		t.Errorf("during window: %+v", res)
	}
	// After the window: hard-broken, the state IABot observes.
	if res := w.Get(url, simclock.StudyTime); res.Status != 404 {
		t.Errorf("after window: %+v", res)
	}
}

func TestErrorStyleSwitch(t *testing.T) {
	w := NewWorld()
	s := w.AddSite("switch.simtest", day(2008, 1, 1))
	s.ErrorStyle = SoftRedirectHome
	s.ErrorStyleSwitchAt = day(2016, 1, 1)
	s.ErrorStyleAfter = Hard404
	pg := s.AddPage("/story.html", day(2008, 1, 1))
	pg.DeletedAt = day(2013, 1, 1)
	url := "http://switch.simtest/story.html"

	// Soft era: deleted pages redirect home (what the archive captures).
	if res := w.Get(url, day(2014, 1, 1)); res.Status != 302 || res.Location != "/" {
		t.Errorf("soft era: %+v", res)
	}
	// Hard era: plain 404 (what IABot later observes).
	if res := w.Get(url, simclock.StudyTime); res.Status != 404 {
		t.Errorf("hard era: %+v", res)
	}
}
