package simweb

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"permadead/internal/simclock"
)

// Server exposes a World over real HTTP and HTTPS on the loopback
// interface. Virtual hosting is by Host header: the paired Transport's
// dialer routes every simulated hostname to the server's listeners, so
// a stock net/http client resolves "http://www.example.simnews/..."
// against the simulation exactly as it would against the internet.
//
// Transport-level failure modes are simulated in the dialer (DNS
// failures, connection timeouts); HTTP-level behaviour comes from the
// same Result state machine the in-process Transport uses.
type Server struct {
	World *World
	// At is the simulated day, unless a request carries DayHeader.
	At simclock.Day
	// TimeoutHang is how long the handler stalls a request whose
	// simulated outcome is a timeout; pair it with a smaller client
	// timeout. Defaults to 2s.
	TimeoutHang time.Duration

	httpLn  net.Listener
	httpsLn net.Listener
	httpSrv *http.Server
}

// NewServer creates (but does not start) a Server pinned to day at.
func NewServer(w *World, at simclock.Day) *Server {
	return &Server{World: w, At: at, TimeoutHang: 2 * time.Second}
}

// Start binds the HTTP and HTTPS listeners on 127.0.0.1 and begins
// serving. The HTTPS listener uses a freshly generated self-signed
// certificate; Transport() configures clients to accept it.
func (s *Server) Start() error {
	var err error
	s.httpLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("simweb: listen http: %w", err)
	}
	cert, err := selfSignedCert()
	if err != nil {
		s.httpLn.Close()
		return err
	}
	tlsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.httpLn.Close()
		return fmt.Errorf("simweb: listen https: %w", err)
	}
	s.httpsLn = tls.NewListener(tlsLn, &tls.Config{Certificates: []tls.Certificate{cert}})

	s.httpSrv = &http.Server{Handler: http.HandlerFunc(s.handle)}
	go s.httpSrv.Serve(s.httpLn)  //nolint:errcheck // closed on shutdown
	go s.httpSrv.Serve(s.httpsLn) //nolint:errcheck
	return nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.httpSrv.Shutdown(ctx)
}

// HTTPAddr returns the plain-HTTP listener address ("127.0.0.1:port").
func (s *Server) HTTPAddr() string { return s.httpLn.Addr().String() }

// HTTPSAddr returns the TLS listener address.
func (s *Server) HTTPSAddr() string { return s.httpsLn.Addr().String() }

// handle serves one request by evaluating the world's state machine
// for the request's Host and path.
func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	day := s.At
	if h := r.Header.Get(DayHeader); h != "" {
		if n, err := strconv.Atoi(h); err == nil {
			day = simclock.Day(n)
		}
	}
	attempt := 0
	if h := r.Header.Get(AttemptHeader); h != "" {
		if n, err := strconv.Atoi(h); err == nil {
			attempt = n
		}
	}
	host := r.Host
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	pq := r.URL.EscapedPath()
	if pq == "" {
		pq = "/"
	}
	if r.URL.RawQuery != "" {
		pq += "?" + r.URL.RawQuery
	}

	res := s.World.GetPathAttempt(host, pq, day, attempt)
	switch res.Kind {
	case KindDNSFailure:
		if s.World.Resolves(host, day) {
			// A DNS-flap fault, not a lapsed registration: the dialer
			// already connected us, so the closest real-network analogue
			// is the connection dying mid-exchange.
			panic(http.ErrAbortHandler)
		}
		// The dialer should have failed this request already; if a
		// client reaches us anyway (e.g. via direct IP), answer 502 so
		// the mismatch is visible rather than silent.
		http.Error(w, "simweb: host does not resolve", http.StatusBadGateway)
		return
	case KindTimeout:
		// Stall longer than any reasonable client timeout, then drop.
		select {
		case <-r.Context().Done():
		case <-time.After(s.TimeoutHang):
		}
		panic(http.ErrAbortHandler)
	}

	ct := res.ContentType
	if ct == "" {
		ct = "text/html; charset=utf-8"
	}
	w.Header().Set("Content-Type", ct)
	if res.Location != "" {
		scheme := "http"
		if r.TLS != nil {
			scheme = "https"
		}
		w.Header().Set("Location", ResolveLocation(scheme, r.Host, res.Location))
	}
	if res.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(res.RetryAfterSec))
	}
	if r.Method == http.MethodHead {
		// Mirror real servers (and the in-process Transport): HEAD
		// advertises the GET entity's length with an empty body.
		w.Header().Set("Content-Length", strconv.Itoa(len(res.Body)))
	}
	w.WriteHeader(res.Status)
	if r.Method != http.MethodHead {
		fmt.Fprint(w, res.Body)
	}
}

// Transport returns an http.RoundTripper that routes every simulated
// hostname to this server over real TCP, fails DNS-dead hostnames with
// *net.DNSError from the dialer, and trusts the server's self-signed
// certificate. dialTimeout bounds connection attempts to hosts whose
// simulated state is "hang" (use a value well below TimeoutHang).
func (s *Server) Transport(dialTimeout time.Duration) http.RoundTripper {
	dial := func(ctx context.Context, network, addr, target string) (net.Conn, error) {
		host := addr
		if h, _, err := net.SplitHostPort(addr); err == nil {
			host = h
		}
		day := s.At
		if !s.World.Resolves(host, day) {
			return nil, &net.DNSError{Err: "no such host", Name: host, IsNotFound: true}
		}
		site := s.World.Site(host)
		if site != nil && site.TimeoutFrom.Valid() && !day.Before(site.TimeoutFrom) {
			// Simulate a dial that never completes: block until the
			// context or our own timeout expires.
			timer := time.NewTimer(dialTimeout)
			defer timer.Stop()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-timer.C:
				return nil, &timeoutError{addr: addr}
			}
		}
		var d net.Dialer
		return d.DialContext(ctx, network, target)
	}
	return &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return dial(ctx, network, addr, s.HTTPAddr())
		},
		DialTLSContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			conn, err := dial(ctx, network, addr, s.HTTPSAddr())
			if err != nil {
				return nil, err
			}
			host := addr
			if h, _, e := net.SplitHostPort(addr); e == nil {
				host = h
			}
			tlsConn := tls.Client(conn, &tls.Config{
				ServerName:         host,
				InsecureSkipVerify: true, // self-signed simulation cert
			})
			if err := tlsConn.HandshakeContext(ctx); err != nil {
				conn.Close()
				return nil, err
			}
			return tlsConn, nil
		},
		MaxIdleConnsPerHost: 16,
		DisableCompression:  true,
	}
}

// selfSignedCert generates a throwaway ECDSA certificate valid for any
// server name (clients skip verification anyway).
func selfSignedCert() (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("simweb: generate key: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "simweb"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     []string{"*"},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("simweb: create cert: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}

// HostsFileEntry renders an /etc/hosts-style line mapping the given
// simulated hostname to the server, for operators who want to point
// external tools at a running simwebd.
func (s *Server) HostsFileEntry(hostname string) string {
	host, _, _ := net.SplitHostPort(s.HTTPAddr())
	return fmt.Sprintf("%s\t%s", host, strings.ToLower(hostname))
}
