package simweb

import (
	"permadead/internal/simclock"
)

// Transient-fault injection. A Site may carry FaultWindows: bounded
// spans of days during which requests probabilistically fail in a
// transient way (overload 503s, rate-limit 429s, connection timeouts,
// DNS flaps) even though the underlying page is fine. This is the
// failure mode the paper's §3 blames for a share of false "permanently
// dead" verdicts: the link checker caught the site on a bad day.
//
// Windows also model bounded LIFECYCLE scenarios past PR 5's transient
// faults: paywall rollouts (402), geo-blocks against the checker's
// vantage (403), and parking waves (a lapsed-then-re-registered domain
// serving a 200 parked page). These typically run at Rate 1 — retrying
// inside the window never helps; only checks spaced past it do — which
// is exactly what the per-scenario ablation grid measures.
//
// Fault decisions are stateless and deterministic: whether a window
// fires is a pure hash of (window seed, day, attempt number), so the
// same universe seed always yields the same fault schedule, any
// concurrency order observes identical outcomes, and a retrying client
// can genuinely succeed on a later attempt within the same simulated
// day. The attempt number travels on requests via AttemptHeader;
// ground-truth readers (the archive crawler, ablation baselines) pass
// NoFaultAttempt to bypass injection entirely.

// FaultMode is the transient failure a window injects.
type FaultMode uint8

const (
	// FaultServerBusy answers 503 Service Unavailable with a
	// Retry-After header — an overloaded origin or maintenance page.
	FaultServerBusy FaultMode = iota
	// FaultRateLimit answers 429 Too Many Requests with Retry-After —
	// the crawler tripped the site's rate limiter.
	FaultRateLimit
	// FaultTimeout hangs the connection until the client deadline.
	FaultTimeout
	// FaultDNSFlap fails hostname resolution — an expiring lease or a
	// flaky resolver, not a lapsed registration.
	FaultDNSFlap
	// FaultPaywall answers 402 Payment Required — the publisher moved
	// the page behind a paywall for the window's duration. The content
	// still exists; the checker just cannot see it.
	FaultPaywall
	// FaultGeoBlock answers 403 with a region-denial page — the site
	// blocks the checker's vantage point, not the world.
	FaultGeoBlock
	// FaultParking serves a 200 parked-domain page — a registrar
	// interregnum (lapsed then re-registered) during which the URL
	// "works" but the content is gone. Status-based checkers see a
	// healthy page; only content inspection catches it.
	FaultParking
)

func (m FaultMode) String() string {
	switch m {
	case FaultServerBusy:
		return "503"
	case FaultRateLimit:
		return "429"
	case FaultTimeout:
		return "timeout"
	case FaultDNSFlap:
		return "dns-flap"
	case FaultPaywall:
		return "paywall"
	case FaultGeoBlock:
		return "geo-block"
	case FaultParking:
		return "parking"
	default:
		return "unknown"
	}
}

// NoFaultAttempt, passed as the attempt number, bypasses fault
// evaluation: the caller sees the site's true lifecycle state. The
// archive crawler uses it (archival crawlers retry offline until a
// capture succeeds), as do ablation ground-truth baselines.
const NoFaultAttempt = -1

// FaultWindow is one transient-fault span on a site. The window is
// active on days d with From <= d < To (To == simclock.Never leaves it
// open-ended). While active, each (day, attempt) pair independently
// fails with probability Rate.
type FaultWindow struct {
	From, To simclock.Day
	Mode     FaultMode
	// Rate is the per-attempt failure probability in [0, 1].
	Rate float64
	// RetryAfterSec is the Retry-After value advertised by 503/429
	// fault responses (default 120 when zero).
	RetryAfterSec int
	// Seed decorrelates this window's fault schedule from every other
	// window's.
	Seed uint64
}

// ActiveOn reports whether the window covers the given day.
func (fw FaultWindow) ActiveOn(day simclock.Day) bool {
	return !day.Before(fw.From) && (!fw.To.Valid() || day.Before(fw.To))
}

// fires decides, deterministically, whether this window faults the
// given (day, attempt) pair.
func (fw FaultWindow) fires(day simclock.Day, attempt int) bool {
	if attempt < 0 || fw.Rate <= 0 || !fw.ActiveOn(day) {
		return false
	}
	x := mix64(fw.Seed ^ mix64(uint64(int64(day))) ^ mix64(uint64(int64(attempt))+0x51ab))
	return float64(x>>11)/float64(1<<53) < fw.Rate
}

// retryAfter returns the effective Retry-After advertisement.
func (fw FaultWindow) retryAfter() int {
	if fw.RetryAfterSec > 0 {
		return fw.RetryAfterSec
	}
	return 120
}

// SuspectUntil reports whether any transient-fault window is active on
// the given day — in which case a dead verdict measured that day is
// suspect (the checker may have caught the site on a bad day, the §3
// false-dead mechanism) — and the earliest day by which every window
// active on that day has expired, i.e. the first day a re-check is
// guaranteed clear of those windows. When some active window is
// open-ended (To == simclock.Never) there is no such day and the
// second return is simclock.Never; callers fall back to their normal
// re-check cadence.
func (s *Site) SuspectUntil(day simclock.Day) (until simclock.Day, suspect bool) {
	until = simclock.Day(0)
	for _, fw := range s.Faults {
		if fw.Rate <= 0 || !fw.ActiveOn(day) {
			continue
		}
		suspect = true
		if !fw.To.Valid() {
			return simclock.Never, true
		}
		if fw.To.After(until) {
			until = fw.To
		}
	}
	if !suspect {
		return 0, false
	}
	return until, true
}

// faultAt returns the first window that fires for (day, attempt).
func (s *Site) faultAt(day simclock.Day, attempt int) (FaultWindow, bool) {
	for _, fw := range s.Faults {
		if fw.fires(day, attempt) {
			return fw, true
		}
	}
	return FaultWindow{}, false
}

// faultResult maps a fired window to its transport-level outcome.
func faultResult(s *Site, fw FaultWindow) Result {
	switch fw.Mode {
	case FaultDNSFlap:
		return Result{Kind: KindDNSFailure}
	case FaultTimeout:
		return Result{Kind: KindTimeout}
	case FaultPaywall:
		return Result{Kind: KindResponse, Status: 402, Body: paywallBody(s)}
	case FaultGeoBlock:
		return Result{Kind: KindResponse, Status: 403, Body: geoBlockBody(s)}
	case FaultParking:
		// 200 with a parked-domain page: the one scenario a status-code
		// checker cannot catch.
		return Result{Kind: KindResponse, Status: 200, Body: parkedBody(s)}
	case FaultRateLimit:
		return Result{
			Kind:          KindResponse,
			Status:        429,
			Body:          rateLimitBody(s),
			RetryAfterSec: fw.retryAfter(),
		}
	default: // FaultServerBusy
		return Result{
			Kind:          KindResponse,
			Status:        503,
			Body:          busyBody(s),
			RetryAfterSec: fw.retryAfter(),
		}
	}
}
