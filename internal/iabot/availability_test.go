package iabot

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"permadead/internal/archive"
	"permadead/internal/fetch"
	"permadead/internal/simclock"
	"permadead/internal/simweb"
	"permadead/internal/wikimedia"
)

// TestBotAgainstHTTPArchive runs the same scan against a local archive
// and against the archive served over its HTTP API; the bot's patch
// decision must agree.
func TestBotAgainstHTTPArchive(t *testing.T) {
	mk := func() (*simweb.World, *wikimedia.Wiki, *archive.Archive) {
		world := simweb.NewWorld()
		s := world.AddSite("dies.simtest", d(2008, 1, 1))
		pg := s.AddPage("/article.html", d(2008, 1, 1))
		pg.DeletedAt = d(2016, 1, 1)
		pg2 := s.AddPage("/hopeless.html", d(2008, 1, 1))
		pg2.DeletedAt = d(2016, 1, 1)

		wiki := wikimedia.NewWiki()
		wiki.Create("Art", d(2010, 5, 1),
			"User", `<ref>{{cite web|url=http://dies.simtest/article.html|title=A}}</ref>
<ref>{{cite web|url=http://dies.simtest/hopeless.html|title=B}}</ref>`)

		arch := archive.New()
		arch.Add(archive.Snapshot{
			URL: "http://dies.simtest/article.html", Day: d(2011, 1, 1),
			InitialStatus: 200, FinalStatus: 200,
		})
		return world, wiki, arch
	}

	run := func(source Availability) (string, Stats) {
		world, wiki, arch := mk()
		bot := New(wiki, arch, func(day simclock.Day) *fetch.Client {
			return fetch.New(simweb.NewTransport(world, day))
		})
		bot.Source = source
		if source == nil {
			// default local path
		}
		if _, err := bot.ScanArticle(context.Background(), "Art", d(2018, 1, 1)); err != nil {
			t.Fatal(err)
		}
		return wiki.Article("Art").Current().Text, bot.Stats()
	}

	// Local (default) run.
	localText, localStats := run(nil)

	// HTTP run: serve a fresh archive with the same contents.
	_, _, arch2 := mk()
	srv := httptest.NewServer(arch2.Handler())
	defer srv.Close()
	httpText, httpStats := run(HTTPAvailability{Client: archive.NewHTTPClient(srv.URL)})

	if localStats.Patched != 1 || localStats.MarkedDead != 1 {
		t.Fatalf("local stats = %+v", localStats)
	}
	if httpStats.Patched != localStats.Patched || httpStats.MarkedDead != localStats.MarkedDead {
		t.Errorf("HTTP stats diverge: %+v vs %+v", httpStats, localStats)
	}
	// Same citations end up patched/marked.
	for _, want := range []string{"archive-url=", "{{Dead link"} {
		if strings.Contains(localText, want) != strings.Contains(httpText, want) {
			t.Errorf("texts diverge on %q:\nlocal: %s\nhttp:  %s", want, localText, httpText)
		}
	}
}

func TestHTTPAvailabilityRejectsRedirectCopies(t *testing.T) {
	arch := archive.New()
	arch.Add(archive.Snapshot{
		URL: "http://m.simtest/old.html", Day: d(2014, 1, 1),
		InitialStatus: 301, FinalStatus: 200, RedirectTo: "http://m.simtest/new.html",
	})
	srv := httptest.NewServer(arch.Handler())
	defer srv.Close()

	src := HTTPAvailability{Client: archive.NewHTTPClient(srv.URL)}
	_, ok, err := src.QueryUsable("http://m.simtest/old.html", d(2014, 1, 1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("redirect copy must be conservatively unusable (§4.2)")
	}
}

func TestHTTPAvailabilityTransportFailure(t *testing.T) {
	src := HTTPAvailability{Client: archive.NewHTTPClient("http://127.0.0.1:1")}
	_, ok, err := src.QueryUsable("http://x.simtest/", 0, 0, 500*time.Millisecond)
	if ok || err == nil {
		t.Errorf("dead archive: ok=%v err=%v", ok, err)
	}
}

func TestLocalAvailabilityHonoursAsOf(t *testing.T) {
	arch := archive.New()
	arch.Add(archive.Snapshot{
		URL: "http://a.simtest/p", Day: d(2020, 1, 1),
		InitialStatus: 200, FinalStatus: 200,
	})
	src := LocalAvailability{Arch: arch}
	if _, ok, _ := src.QueryUsable("http://a.simtest/p", d(2010, 1, 1), d(2018, 1, 1), 0); ok {
		t.Error("future copy leaked through asOf")
	}
	if _, ok, _ := src.QueryUsable("http://a.simtest/p", d(2010, 1, 1), d(2021, 1, 1), 0); !ok {
		t.Error("visible copy not found")
	}
}
