package iabot

import (
	"time"

	"permadead/internal/archive"
	"permadead/internal/simclock"
)

// Availability is the bot's view of an archive's availability lookup:
// "the usable copy of url captured closest to want, if any". Two
// implementations ship:
//
//   - LocalAvailability consults an in-process archive.Archive and
//     honours the simulation's as-of bound (a bot scanning in 2018
//     cannot see copies captured in 2020).
//   - HTTPAvailability consults a remote archive through the Wayback-
//     shaped HTTP API. Like the real service, it has no as-of concept:
//     a live bot always queries the archive's present state.
//
// The timeout models IABot's lookup budget (§4.1) in both cases.
type Availability interface {
	QueryUsable(url string, want, asOf simclock.Day, timeout time.Duration) (archive.Snapshot, bool, error)
}

// LocalAvailability adapts an in-process archive.
type LocalAvailability struct {
	Arch *archive.Archive
}

// QueryUsable implements Availability with full as-of semantics.
func (l LocalAvailability) QueryUsable(url string, want, asOf simclock.Day, timeout time.Duration) (archive.Snapshot, bool, error) {
	return l.Arch.Query(archive.AvailabilityQuery{
		URL:     url,
		Want:    want,
		AsOf:    asOf,
		Accept:  archive.AcceptUsable,
		Timeout: timeout,
	})
}

// HTTPAvailability adapts a remote archive API. The asOf bound cannot
// be expressed over the wire (the real availability API has no such
// parameter); use it when the remote archive's state already IS the
// as-of state — e.g. a snapshot-serving simulation, or a live bot
// querying the present.
type HTTPAvailability struct {
	Client *archive.HTTPClient
}

// QueryUsable implements Availability over HTTP. The remote endpoint
// returns the closest 2xx/3xx copy; the initial-status-200 usability
// policy (§4.2) is applied client-side, as IABot does.
func (h HTTPAvailability) QueryUsable(url string, want, _ simclock.Day, timeout time.Duration) (archive.Snapshot, bool, error) {
	if timeout > 0 {
		// The HTTP client's own timeout models the lookup budget.
		inner := *h.Client
		if inner.HTTP != nil {
			c := *inner.HTTP
			c.Timeout = timeout
			inner.HTTP = &c
		}
		h = HTTPAvailability{Client: &inner}
	}
	entry, ok, err := h.Client.Available(url, want)
	if err != nil || !ok {
		return archive.Snapshot{}, false, err
	}
	if entry.InitialStatus != 200 {
		// An archived redirection: conservatively unusable (§4.2).
		return archive.Snapshot{}, false, nil
	}
	return archive.Snapshot{
		URL:           entry.URL,
		Day:           entry.Day,
		InitialStatus: entry.InitialStatus,
		FinalStatus:   entry.InitialStatus,
	}, true, nil
}
