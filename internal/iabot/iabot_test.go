package iabot

import (
	"context"
	"strings"
	"testing"
	"time"

	"permadead/internal/archive"
	"permadead/internal/fetch"
	"permadead/internal/simclock"
	"permadead/internal/simweb"
	"permadead/internal/wikimedia"
)

// fixture wires a world, wiki, archive, and bot for scenario tests.
type fixture struct {
	world *simweb.World
	wiki  *wikimedia.Wiki
	arch  *archive.Archive
	bot   *Bot
}

func newFixture() *fixture {
	f := &fixture{
		world: simweb.NewWorld(),
		wiki:  wikimedia.NewWiki(),
		arch:  archive.New(),
	}
	f.bot = New(f.wiki, f.arch, func(day simclock.Day) *fetch.Client {
		return fetch.New(simweb.NewTransport(f.world, day))
	})
	return f
}

func d(y, m, dd int) simclock.Day { return simclock.FromDate(y, time.Month(m), dd) }

func TestHealthyLinkLeftAlone(t *testing.T) {
	f := newFixture()
	s := f.world.AddSite("ok.simtest", d(2008, 1, 1))
	s.AddPage("/p.html", d(2008, 1, 1))
	f.wiki.Create("Art", d(2010, 1, 1), "User", `<ref>[http://ok.simtest/p.html P]</ref>`)

	edited, err := f.bot.ScanArticle(context.Background(), "Art", d(2018, 1, 1))
	if err != nil || edited {
		t.Fatalf("edited=%v err=%v", edited, err)
	}
	st := f.bot.Stats()
	if st.LinksAlive != 1 || st.LinksBroken != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBrokenLinkWithUsableCopyGetsPatched(t *testing.T) {
	f := newFixture()
	s := f.world.AddSite("dies.simtest", d(2008, 1, 1))
	pg := s.AddPage("/article.html", d(2008, 1, 1))
	pg.DeletedAt = d(2016, 1, 1)
	f.wiki.Create("Art", d(2010, 5, 1), "User", `<ref>{{cite web|url=http://dies.simtest/article.html|title=T}}</ref>`)
	// A 200-status capture from before the deletion.
	f.arch.Add(archive.Snapshot{
		URL: "http://dies.simtest/article.html", Day: d(2011, 1, 1),
		InitialStatus: 200, FinalStatus: 200,
	})

	edited, err := f.bot.ScanArticle(context.Background(), "Art", d(2018, 1, 1))
	if err != nil || !edited {
		t.Fatalf("edited=%v err=%v", edited, err)
	}
	st := f.bot.Stats()
	if st.Patched != 1 || st.MarkedDead != 0 {
		t.Errorf("stats = %+v", st)
	}
	cur := f.wiki.Article("Art").Current()
	if !strings.Contains(cur.Text, "archive-url=https://web.archive.org/web/2011") {
		t.Errorf("text = %q", cur.Text)
	}
	if cur.User != DefaultName {
		t.Errorf("edit user = %q", cur.User)
	}
	// Patched articles are NOT in the permanently-dead category.
	if got := f.wiki.InCategory(Category); len(got) != 0 {
		t.Errorf("category = %v", got)
	}
}

func TestBrokenLinkWithoutCopyMarkedDead(t *testing.T) {
	f := newFixture()
	s := f.world.AddSite("dies.simtest", d(2008, 1, 1))
	pg := s.AddPage("/article.html", d(2008, 1, 1))
	pg.DeletedAt = d(2016, 1, 1)
	f.wiki.Create("Art", d(2010, 5, 1), "User", `<ref>{{cite web|url=http://dies.simtest/article.html|title=T}}</ref>`)

	scanDay := d(2018, 3, 1)
	edited, err := f.bot.ScanArticle(context.Background(), "Art", scanDay)
	if err != nil || !edited {
		t.Fatalf("edited=%v err=%v", edited, err)
	}
	st := f.bot.Stats()
	if st.MarkedDead != 1 || st.Patched != 0 {
		t.Errorf("stats = %+v", st)
	}
	cur := f.wiki.Article("Art").Current()
	if !strings.Contains(cur.Text, "{{Dead link|date=March 2018|bot=InternetArchiveBot") {
		t.Errorf("text = %q", cur.Text)
	}
	if got := f.wiki.InCategory(Category); len(got) != 1 || got[0] != "Art" {
		t.Errorf("category = %v", got)
	}
	// Edit history attributes the marking correctly.
	h, ok := f.wiki.HistoryOf("Art", "http://dies.simtest/article.html")
	if !ok || h.MarkedDead != scanDay || h.MarkedDeadBy != DefaultName {
		t.Errorf("history = %+v", h)
	}
}

func TestRedirectCopiesIgnored(t *testing.T) {
	// §4.2: a 3xx capture exists, but IABot conservatively ignores it
	// and marks the link permanently dead.
	f := newFixture()
	s := f.world.AddSite("mv.simtest", d(2008, 1, 1))
	pg := s.AddPage("/old.html", d(2008, 1, 1))
	pg.MovedAt = d(2015, 1, 1) // no redirect ever installed
	f.wiki.Create("Art", d(2010, 5, 1), "User", `<ref>[http://mv.simtest/old.html O]</ref>`)
	f.arch.Add(archive.Snapshot{
		URL: "http://mv.simtest/old.html", Day: d(2014, 1, 1),
		InitialStatus: 301, FinalStatus: 200, RedirectTo: "http://mv.simtest/new.html",
	})

	if _, err := f.bot.ScanArticle(context.Background(), "Art", d(2018, 1, 1)); err != nil {
		t.Fatal(err)
	}
	st := f.bot.Stats()
	if st.MarkedDead != 1 || st.Patched != 0 {
		t.Errorf("stats = %+v (redirect copy must be ignored)", st)
	}
}

func TestAvailabilityTimeoutMissesCopy(t *testing.T) {
	// §4.1: a usable copy exists, but the lookup exceeds the bot's
	// timeout, so the link is marked permanently dead anyway.
	f := newFixture()
	s := f.world.AddSite("slow.simtest", d(2008, 1, 1))
	pg := s.AddPage("/p.html", d(2008, 1, 1))
	pg.DeletedAt = d(2016, 1, 1)
	url := "http://slow.simtest/p.html"
	f.wiki.Create("Art", d(2010, 5, 1), "User", `<ref>[`+url+` P]</ref>`)
	f.arch.Add(archive.Snapshot{URL: url, Day: d(2011, 1, 1), InitialStatus: 200, FinalStatus: 200})
	f.arch.SetLookupLatency(url, 10*time.Second)

	if _, err := f.bot.ScanArticle(context.Background(), "Art", d(2018, 1, 1)); err != nil {
		t.Fatal(err)
	}
	st := f.bot.Stats()
	if st.MarkedDead != 1 || st.AvailabilityTimeouts != 1 {
		t.Errorf("stats = %+v", st)
	}
	// With the timeout disabled the same bot patches it.
	f2 := newFixture()
	s2 := f2.world.AddSite("slow.simtest", d(2008, 1, 1))
	pg2 := s2.AddPage("/p.html", d(2008, 1, 1))
	pg2.DeletedAt = d(2016, 1, 1)
	f2.wiki.Create("Art", d(2010, 5, 1), "User", `<ref>[`+url+` P]</ref>`)
	f2.arch.Add(archive.Snapshot{URL: url, Day: d(2011, 1, 1), InitialStatus: 200, FinalStatus: 200})
	f2.arch.SetLookupLatency(url, 10*time.Second)
	f2.bot.AvailabilityTimeout = 0

	if _, err := f2.bot.ScanArticle(context.Background(), "Art", d(2018, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if st := f2.bot.Stats(); st.Patched != 1 {
		t.Errorf("untimed stats = %+v", st)
	}
}

func TestFutureCopiesInvisible(t *testing.T) {
	// A copy captured after the scan day must not be visible to the bot.
	f := newFixture()
	s := f.world.AddSite("x.simtest", d(2008, 1, 1))
	pg := s.AddPage("/p.html", d(2008, 1, 1))
	pg.DeletedAt = d(2016, 1, 1)
	url := "http://x.simtest/p.html"
	f.wiki.Create("Art", d(2010, 5, 1), "User", `<ref>[`+url+` P]</ref>`)
	f.arch.Add(archive.Snapshot{URL: url, Day: d(2020, 1, 1), InitialStatus: 200, FinalStatus: 200})

	if _, err := f.bot.ScanArticle(context.Background(), "Art", d(2018, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if st := f.bot.Stats(); st.MarkedDead != 1 || st.Patched != 0 {
		t.Errorf("stats = %+v (future copy leaked)", st)
	}
}

func TestDeadLinksExcludedFromRechecks(t *testing.T) {
	f := newFixture()
	s := f.world.AddSite("d.simtest", d(2008, 1, 1))
	pg := s.AddPage("/p.html", d(2008, 1, 1))
	pg.DeletedAt = d(2016, 1, 1)
	f.wiki.Create("Art", d(2010, 5, 1), "User", `<ref>[http://d.simtest/p.html P]</ref>`)

	ctx := context.Background()
	if _, err := f.bot.ScanArticle(ctx, "Art", d(2018, 1, 1)); err != nil {
		t.Fatal(err)
	}
	checkedAfterFirst := f.bot.Stats().LinksChecked
	// Second scan: the dead link is skipped, not re-fetched.
	if _, err := f.bot.ScanArticle(ctx, "Art", d(2019, 1, 1)); err != nil {
		t.Fatal(err)
	}
	st := f.bot.Stats()
	if st.LinksChecked != checkedAfterFirst {
		t.Errorf("dead link was re-checked: %+v", st)
	}
	if st.SkippedDead != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRecheckDeadRecoversRevivedLink(t *testing.T) {
	// §3: the page moves, gets marked dead, then the site installs a
	// redirect. With RecheckDead, a later scan un-tags the link.
	f := newFixture()
	s := f.world.AddSite("rev.simtest", d(2008, 1, 1))
	pg := s.AddPage("/old.html", d(2008, 1, 1))
	pg.MovedAt = d(2016, 1, 1)
	pg.NewPath = "/new.html"
	pg.RedirectFrom = d(2020, 1, 1)
	s.AddPage("/new.html", d(2016, 1, 1))
	f.wiki.Create("Art", d(2010, 5, 1), "User", `<ref>[http://rev.simtest/old.html O]</ref>`)

	ctx := context.Background()
	if _, err := f.bot.ScanArticle(ctx, "Art", d(2018, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if st := f.bot.Stats(); st.MarkedDead != 1 {
		t.Fatalf("precondition: %+v", st)
	}
	// Without RecheckDead the link stays tagged forever.
	if _, err := f.bot.ScanArticle(ctx, "Art", d(2021, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if len(f.wiki.DeadLinks("Art")) != 1 {
		t.Fatal("link should still be tagged without RecheckDead")
	}
	// With it, the revived link is recovered.
	f.bot.RecheckDead = true
	if _, err := f.bot.ScanArticle(ctx, "Art", d(2021, 6, 1)); err != nil {
		t.Fatal(err)
	}
	if st := f.bot.Stats(); st.Recovered != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(f.wiki.DeadLinks("Art")) != 0 {
		t.Error("dead tag should be removed after recovery")
	}
}

func TestAlreadyArchivedLinksSkipped(t *testing.T) {
	f := newFixture()
	f.wiki.Create("Art", d(2010, 5, 1), "User",
		`<ref>{{cite web|url=http://gone.simtest/p|title=T|archive-url=https://web.archive.org/web/2011/http://gone.simtest/p|archive-date=2011}}</ref>`)
	if _, err := f.bot.ScanArticle(context.Background(), "Art", d(2018, 1, 1)); err != nil {
		t.Fatal(err)
	}
	st := f.bot.Stats()
	if st.SkippedArchived != 1 || st.LinksChecked != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestScanAllAndMultipleLinks(t *testing.T) {
	f := newFixture()
	ok := f.world.AddSite("ok.simtest", d(2008, 1, 1))
	ok.AddPage("/p.html", d(2008, 1, 1))
	gone := f.world.AddSite("gone.simtest", d(2008, 1, 1))
	gone.DNSDiesAt = d(2015, 1, 1)
	gone.AddPage("/x.html", d(2008, 1, 1))

	f.wiki.Create("A1", d(2010, 1, 1), "U",
		`<ref>[http://ok.simtest/p.html P]</ref> <ref>[http://gone.simtest/x.html X]</ref>`)
	f.wiki.Create("A2", d(2010, 1, 1), "U", `<ref>[http://gone.simtest/x.html X]</ref>`)

	if err := f.bot.ScanAll(context.Background(), d(2018, 1, 1)); err != nil {
		t.Fatal(err)
	}
	st := f.bot.Stats()
	if st.ArticlesScanned != 2 || st.MarkedDead != 2 || st.LinksAlive != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := f.wiki.InCategory(Category); len(got) != 2 {
		t.Errorf("category = %v", got)
	}
}

func TestScanMissingArticle(t *testing.T) {
	f := newFixture()
	edited, err := f.bot.ScanArticle(context.Background(), "Nope", d(2018, 1, 1))
	if err != nil || edited {
		t.Errorf("missing article: %v, %v", edited, err)
	}
}

func TestContextCancellationStopsScanAll(t *testing.T) {
	f := newFixture()
	f.wiki.Create("A", d(2010, 1, 1), "U", "x")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.bot.ScanAll(ctx, d(2018, 1, 1)); err == nil {
		t.Error("cancelled scan should error")
	}
}

func TestScanLinkTouchesOnlyTargetURL(t *testing.T) {
	f := newFixture()
	s := f.world.AddSite("dies.simtest", d(2008, 1, 1))
	pg := s.AddPage("/a.html", d(2008, 1, 1))
	pg.DeletedAt = d(2016, 1, 1)
	pg2 := s.AddPage("/b.html", d(2008, 1, 1))
	pg2.DeletedAt = d(2016, 1, 1)
	f.wiki.Create("Art", d(2010, 5, 1), "User",
		`<ref>{{cite web|url=http://dies.simtest/a.html|title=A}}</ref><ref>{{cite web|url=http://dies.simtest/b.html|title=B}}</ref>`)

	// Scan only /a.html: /b.html is equally dead but must be left
	// untouched.
	edited, err := f.bot.ScanLink(context.Background(), "Art", "http://dies.simtest/a.html", d(2018, 1, 1))
	if err != nil || !edited {
		t.Fatalf("edited=%v err=%v", edited, err)
	}
	st := f.bot.Stats()
	if st.LinksChecked != 1 || st.MarkedDead != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.ArticlesScanned != 0 {
		t.Errorf("targeted scan counted as article scan: %+v", st)
	}
	cur := f.wiki.Article("Art").Current().Text
	if !strings.Contains(cur, "a.html|title=A}} {{dead link") &&
		!strings.Contains(cur, `a.html|title=A|url-status=dead`) {
		t.Errorf("a.html not marked: %q", cur)
	}
	if strings.Contains(cur[strings.Index(cur, "b.html"):], "dead link") {
		t.Errorf("b.html was touched: %q", cur)
	}

	// Scanning a URL the article does not cite edits nothing.
	edited, err = f.bot.ScanLink(context.Background(), "Art", "http://elsewhere.simtest/x", d(2018, 1, 2))
	if err != nil || edited {
		t.Fatalf("foreign url: edited=%v err=%v", edited, err)
	}
	// ScanLink on a missing article is a no-op.
	if edited, err := f.bot.ScanLink(context.Background(), "Missing", "http://dies.simtest/a.html", d(2018, 1, 2)); err != nil || edited {
		t.Fatalf("missing article: edited=%v err=%v", edited, err)
	}
}

func TestScanLinkPatchesWithUsableCopy(t *testing.T) {
	f := newFixture()
	s := f.world.AddSite("dies.simtest", d(2008, 1, 1))
	pg := s.AddPage("/a.html", d(2008, 1, 1))
	pg.DeletedAt = d(2016, 1, 1)
	f.wiki.Create("Art", d(2010, 5, 1), "User", `<ref>{{cite web|url=http://dies.simtest/a.html|title=A}}</ref>`)
	f.arch.Add(archive.Snapshot{
		URL: "http://dies.simtest/a.html", Day: d(2011, 1, 1),
		InitialStatus: 200, FinalStatus: 200,
	})

	edited, err := f.bot.ScanLink(context.Background(), "Art", "http://dies.simtest/a.html", d(2018, 1, 1))
	if err != nil || !edited {
		t.Fatalf("edited=%v err=%v", edited, err)
	}
	if st := f.bot.Stats(); st.Patched != 1 || st.MarkedDead != 0 {
		t.Errorf("stats = %+v", st)
	}
	if cur := f.wiki.Article("Art").Current().Text; !strings.Contains(cur, "archive-url=https://web.archive.org/web/2011") {
		t.Errorf("text = %q", cur)
	}
}
