// Package iabot reimplements InternetArchiveBot's link-maintenance
// policy as the paper describes and observes it (§2.1, §3, §4):
//
//   - Scanning an article, the bot extracts all outgoing external
//     links and tests each with a single HTTP GET; a link is broken
//     iff the final status code (after redirections) is not 200.
//   - For a broken link, the bot queries the Wayback Availability API
//     for the copy captured closest to when the link was added to the
//     article — but with a timeout: a slow lookup is treated as "no
//     copies exist" (§4.1).
//   - A usable copy must have initial status 200; archived copies in
//     which a redirection was observed are conservatively ignored
//     (§4.2).
//   - With a usable copy, the bot patches the citation; with none, it
//     tags the link {{dead link|bot=InternetArchiveBot}} — the
//     "permanently dead" marking — and files the article under the
//     tracking category.
//   - Once a link is marked dead it is excluded from future checks,
//     to maximize efficiency (§3 notes this, and recommends against
//     it; the RecheckDead knob implements the recommendation for the
//     ablation benchmarks).
package iabot

import (
	"context"
	"sync"
	"time"

	"permadead/internal/archive"
	"permadead/internal/fetch"
	"permadead/internal/simclock"
	"permadead/internal/wikimedia"
	"permadead/internal/wikitext"
)

// DefaultName is the bot's Wikipedia username.
const DefaultName = "InternetArchiveBot"

// Category is the tracking category for articles containing links
// marked permanently dead (§2.2).
const Category = "Articles with permanently dead external links"

// DefaultAvailabilityTimeout is the bot's Wayback lookup timeout. The
// real value is an operational constant; what matters for the study is
// that some lookups exceed it (§4.1).
const DefaultAvailabilityTimeout = 2 * time.Second

// ClientFactory builds a fetch client measuring the (simulated) live
// web as of the given day.
type ClientFactory func(day simclock.Day) *fetch.Client

// Bot is one IABot instance.
type Bot struct {
	// Name is the username recorded on the bot's edits.
	Name string
	Wiki *wikimedia.Wiki
	Arch *archive.Archive
	// NewClient supplies the live-web client for a scan day.
	NewClient ClientFactory
	// AvailabilityTimeout bounds Wayback lookups; zero disables the
	// timeout (removing the §4.1 failure mode).
	AvailabilityTimeout time.Duration
	// RecheckDead re-tests links already marked dead (the paper's §3
	// recommendation; the real bot does not).
	RecheckDead bool
	// Source overrides where availability lookups go; nil uses the
	// local Arch (LocalAvailability). Set an HTTPAvailability to run
	// the bot against a remote archive API.
	Source Availability

	mu       sync.Mutex
	stats    Stats
	addDates map[string]simclock.Day
}

// Stats aggregates a bot's activity.
type Stats struct {
	ArticlesScanned      int
	ArticlesEdited       int
	LinksChecked         int
	LinksAlive           int
	LinksBroken          int
	Patched              int
	MarkedDead           int
	AvailabilityTimeouts int
	SkippedDead          int
	SkippedArchived      int
	// Recovered counts dead-tagged links found alive again on
	// re-check (RecheckDead only).
	Recovered int
}

// New builds a bot with the default name and timeout.
func New(w *wikimedia.Wiki, a *archive.Archive, f ClientFactory) *Bot {
	return &Bot{
		Name:                DefaultName,
		Wiki:                w,
		Arch:                a,
		NewClient:           f,
		AvailabilityTimeout: DefaultAvailabilityTimeout,
		addDates:            make(map[string]simclock.Day),
	}
}

// Stats returns a copy of the bot's counters.
func (b *Bot) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// linkOutcome is what one maintainLink pass did to a citation.
type linkOutcome struct {
	changed, marked, patched bool
}

// maintainLink applies the bot's per-link policy to one citation: an
// already-dead link is skipped (or re-tested under RecheckDead), an
// already-archived one is skipped, and an unarchived one is tested
// with a single GET — broken links get a usable archived copy patched
// in, or failing that the {{dead link}} mark (§2.1, §4). Both
// ScanArticle and ScanLink route through here, so a targeted re-scan
// cannot diverge from the full-article policy.
func (b *Bot) maintainLink(ctx context.Context, client *fetch.Client, title string, cl *wikitext.CitedLink, day simclock.Day) linkOutcome {
	var out linkOutcome
	if cl.IsDead() {
		if !b.RecheckDead {
			b.count(func(s *Stats) { s.SkippedDead++ })
			return out
		}
		res := client.Fetch(ctx, cl.URL)
		b.count(func(s *Stats) { s.LinksChecked++ })
		if res.FinalStatus == 200 {
			cl.RemoveDeadTag()
			b.count(func(s *Stats) { s.Recovered++; s.LinksAlive++ })
			out.changed = true
		} else {
			b.count(func(s *Stats) { s.LinksBroken++ })
		}
		return out
	}
	if cl.ArchiveURL() != "" {
		b.count(func(s *Stats) { s.SkippedArchived++ })
		return out
	}

	res := client.Fetch(ctx, cl.URL)
	b.count(func(s *Stats) { s.LinksChecked++ })
	if res.FinalStatus == 200 {
		// One attempt; 200 after redirections means alive (§2.1).
		b.count(func(s *Stats) { s.LinksAlive++ })
		return out
	}
	b.count(func(s *Stats) { s.LinksBroken++ })

	snap, found := b.lookupCopy(title, cl.URL, day)
	if found {
		cl.PatchWithArchive(snap.WaybackURL(), snap.Day.String())
		b.count(func(s *Stats) { s.Patched++ })
		out.patched = true
	} else {
		cl.MarkDead(monthYear(day), b.Name)
		b.count(func(s *Stats) { s.MarkedDead++ })
		out.marked = true
	}
	out.changed = true
	return out
}

// scanLinks runs maintainLink over the article's citations — all of
// them, or only those matching onlyURL when it is non-empty — and
// commits an edit if anything changed. It reports whether the article
// was edited.
func (b *Bot) scanLinks(ctx context.Context, title, onlyURL string, day simclock.Day) (bool, error) {
	art := b.Wiki.Article(title)
	if art == nil {
		return false, nil
	}
	client := b.NewClient(day)
	doc := art.Current().Doc()
	links := doc.CitedLinks()

	var agg linkOutcome
	// Reverse order: mutations insert nodes after the current link, so
	// walking backwards keeps earlier links' positions valid.
	for i := len(links) - 1; i >= 0; i-- {
		cl := links[i]
		if cl.URL == "" || (onlyURL != "" && cl.URL != onlyURL) {
			continue
		}
		out := b.maintainLink(ctx, client, title, cl, day)
		agg.changed = agg.changed || out.changed
		agg.marked = agg.marked || out.marked
		agg.patched = agg.patched || out.patched
	}

	if onlyURL == "" {
		b.count(func(s *Stats) { s.ArticlesScanned++ })
	}
	if !agg.changed {
		return false, nil
	}
	if agg.marked {
		doc.AddCategory(Category)
	}
	comment := editComment(agg.patched, agg.marked)
	if _, err := b.Wiki.Edit(title, day, b.Name, comment, doc.Render()); err != nil {
		return false, err
	}
	b.count(func(s *Stats) { s.ArticlesEdited++ })
	return true, nil
}

// ScanArticle runs one maintenance pass over the titled article as of
// day. It reports whether the article was edited.
func (b *Bot) ScanArticle(ctx context.Context, title string, day simclock.Day) (bool, error) {
	return b.scanLinks(ctx, title, "", day)
}

// ScanLink runs the bot's maintenance policy for a single URL's
// citations within the titled article — the continuous monitor's
// repair path: when a watched link flips to dead, the bot revisits
// just that citation instead of rescanning the whole article. Every
// occurrence of the URL in the article is maintained; other links are
// untouched. It reports whether the article was edited.
func (b *Bot) ScanLink(ctx context.Context, title, url string, day simclock.Day) (bool, error) {
	if url == "" {
		return false, nil
	}
	return b.scanLinks(ctx, title, url, day)
}

// ScanAll scans every article in the wiki as of day, in title order.
func (b *Bot) ScanAll(ctx context.Context, day simclock.Day) error {
	for _, title := range b.Wiki.Titles() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := b.ScanArticle(ctx, title, day); err != nil {
			return err
		}
	}
	return nil
}

// lookupCopy queries the Availability API for a usable archived copy
// of url: initial status 200, no redirect observed, captured no later
// than the scan day, closest to the day the link was added (§2.1). A
// lookup timeout is treated as "never archived" (§4.1).
func (b *Bot) lookupCopy(title, url string, day simclock.Day) (archive.Snapshot, bool) {
	added := b.addedDay(title, url, day)
	src := b.Source
	if src == nil {
		src = LocalAvailability{Arch: b.Arch}
	}
	snap, ok, err := src.QueryUsable(url, added, day, b.AvailabilityTimeout)
	if err != nil {
		// A lookup timeout — or any transport failure against a remote
		// archive — is treated as "never archived" (§4.1).
		b.count(func(s *Stats) { s.AvailabilityTimeouts++ })
		return archive.Snapshot{}, false
	}
	return snap, ok
}

// addedDay returns (and caches) the day url was first added to the
// titled article, falling back to the scan day when history is
// missing.
func (b *Bot) addedDay(title, url string, day simclock.Day) simclock.Day {
	key := title + "\x00" + url
	b.mu.Lock()
	if d, ok := b.addDates[key]; ok {
		b.mu.Unlock()
		return d
	}
	b.mu.Unlock()

	d := day
	if h, ok := b.Wiki.HistoryOf(title, url); ok {
		d = h.Added
	}
	b.mu.Lock()
	b.addDates[key] = d
	b.mu.Unlock()
	return d
}

func (b *Bot) count(fn func(*Stats)) {
	b.mu.Lock()
	fn(&b.stats)
	b.mu.Unlock()
}

func editComment(patched, marked bool) string {
	switch {
	case patched && marked:
		return "Rescuing sources and tagging others as dead. #IABot"
	case patched:
		return "Rescuing sources. #IABot"
	default:
		return "Tagging dead links. #IABot"
	}
}

// monthYear renders a Day in the {{dead link|date=...}} format, e.g.
// "March 2022".
func monthYear(d simclock.Day) string {
	return d.Time().Format("January 2006")
}
