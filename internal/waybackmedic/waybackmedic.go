// Package waybackmedic reimplements WaybackMedic, the slower but more
// comprehensive bot the Internet Archive uses to patch Wikipedia's
// broken references (§4.1). After the paper's authors reported that
// the Wayback Machine held 200-status copies for many links IABot had
// marked permanently dead, WaybackMedic was run over all such links
// and patched 20,080 of them.
//
// The behavioural differences from IABot that matter here:
//
//   - No availability-lookup timeout: a slow lookup still completes,
//     so copies IABot missed (§4.1) are found.
//   - Optionally, validated archived redirections are accepted too
//     (the paper's §4.2 proposal), using the redircheck cross-
//     examination.
//
// Like the real bot, it operates on links already marked permanently
// dead rather than scanning every link from scratch.
package waybackmedic

import (
	"permadead/internal/archive"
	"permadead/internal/iabot"
	"permadead/internal/redircheck"
	"permadead/internal/simclock"
	"permadead/internal/wikimedia"
)

// DefaultName is the bot's username (the real bot runs under GreenC's
// account).
const DefaultName = "GreenC bot"

// Medic is one WaybackMedic instance.
type Medic struct {
	Name string
	Wiki *wikimedia.Wiki
	Arch *archive.Archive
	// AcceptRedirects additionally rescues links via validated 3xx
	// copies (§4.2's proposal); nil Checker disables it even if true.
	AcceptRedirects bool
	Checker         *redircheck.Checker

	stats Stats
}

// Stats aggregates a run's outcomes.
type Stats struct {
	ArticlesVisited int
	DeadLinksSeen   int
	// Patched counts links rescued with a 200-status copy.
	Patched int
	// RedirectPatched counts links rescued with a validated 3xx copy.
	RedirectPatched int
	// Unfixable counts links for which no usable copy exists.
	Unfixable int
}

// New builds a medic without redirect rescue.
func New(w *wikimedia.Wiki, a *archive.Archive) *Medic {
	return &Medic{Name: DefaultName, Wiki: w, Arch: a}
}

// Stats returns a copy of the run counters.
func (m *Medic) Stats() Stats { return m.stats }

// Run visits every article in the permanently-dead tracking category
// as of day and attempts to rescue each dead-tagged link. It returns
// the run's stats.
func (m *Medic) Run(day simclock.Day) Stats {
	for _, title := range m.Wiki.InCategory(iabot.Category) {
		m.RunArticle(title, day)
	}
	return m.stats
}

// RunArticle rescues dead links on one article.
func (m *Medic) RunArticle(title string, day simclock.Day) {
	art := m.Wiki.Article(title)
	if art == nil {
		return
	}
	m.stats.ArticlesVisited++
	doc := art.Current().Doc()
	links := doc.CitedLinks()
	changed := false
	stillDead := false

	for i := len(links) - 1; i >= 0; i-- {
		cl := links[i]
		if !cl.IsDead() || cl.URL == "" {
			continue
		}
		m.stats.DeadLinksSeen++

		added := day
		if h, ok := m.Wiki.HistoryOf(title, cl.URL); ok {
			added = h.Added
		}

		// Untimed availability lookup: the copy closest to when the
		// link was added, initial status 200.
		snap, ok, _ := m.Arch.Query(archive.AvailabilityQuery{
			URL:    cl.URL,
			Want:   added,
			AsOf:   day,
			Accept: archive.AcceptUsable,
		})
		if ok {
			cl.PatchWithArchive(snap.WaybackURL(), snap.Day.String())
			m.stats.Patched++
			changed = true
			continue
		}

		// Optional §4.2 rescue: a validated archived redirection.
		if m.AcceptRedirects && m.Checker != nil {
			if rsnap, _, found := m.Checker.FindValidatedCopy(cl.URL, day); found {
				cl.PatchWithArchive(rsnap.WaybackURL(), rsnap.Day.String())
				m.stats.RedirectPatched++
				changed = true
				continue
			}
		}
		m.stats.Unfixable++
		stillDead = true
	}

	if !changed {
		return
	}
	if !stillDead {
		doc.RemoveCategory(iabot.Category)
	}
	m.Wiki.Edit(title, day, m.Name, "Rescuing archived links via WaybackMedic", doc.Render()) //nolint:errcheck
}
