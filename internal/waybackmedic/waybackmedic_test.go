package waybackmedic

import (
	"strings"
	"testing"
	"time"

	"permadead/internal/archive"
	"permadead/internal/iabot"
	"permadead/internal/redircheck"
	"permadead/internal/simclock"
	"permadead/internal/wikimedia"
)

func d(y, m, dd int) simclock.Day { return simclock.FromDate(y, time.Month(m), dd) }

// deadArticle builds an article whose link IABot already marked dead.
func deadArticle(wiki *wikimedia.Wiki, title, url string) {
	wiki.Create(title, d(2010, 1, 1), "User", `<ref>{{cite web|url=`+url+`|title=T}}</ref>`)
	wiki.Edit(title, d(2018, 1, 1), iabot.DefaultName, "Tagging dead links. #IABot",
		`<ref>{{cite web|url=`+url+`|title=T|url-status=dead}} {{dead link|date=January 2018|bot=InternetArchiveBot}}</ref>
[[Category:`+iabot.Category+`]]`)
}

func TestMedicPatchesTimeoutMissedCopies(t *testing.T) {
	wiki := wikimedia.NewWiki()
	arch := archive.New()
	url := "http://slow.simtest/p.html"
	deadArticle(wiki, "Art", url)
	// The copy IABot missed due to its availability timeout (§4.1).
	arch.Add(archive.Snapshot{URL: url, Day: d(2011, 1, 1), InitialStatus: 200, FinalStatus: 200})
	arch.SetLookupLatency(url, 10*time.Second) // slow — but the medic doesn't time out

	m := New(wiki, arch)
	st := m.Run(d(2022, 5, 1))
	if st.Patched != 1 || st.Unfixable != 0 {
		t.Fatalf("stats = %+v", st)
	}
	cur := wiki.Article("Art").Current()
	if !strings.Contains(cur.Text, "archive-url=") {
		t.Errorf("text = %q", cur.Text)
	}
	if strings.Contains(strings.ToLower(cur.Text), "{{dead link") {
		t.Error("dead tag should be removed")
	}
	// All dead links fixed: article leaves the category.
	if got := wiki.InCategory(iabot.Category); len(got) != 0 {
		t.Errorf("category = %v", got)
	}
	if cur.User != DefaultName {
		t.Errorf("edit user = %q", cur.User)
	}
}

func TestMedicLeavesUnfixableAlone(t *testing.T) {
	wiki := wikimedia.NewWiki()
	arch := archive.New()
	deadArticle(wiki, "Art", "http://never-archived.simtest/p.html")

	m := New(wiki, arch)
	st := m.Run(d(2022, 5, 1))
	if st.Patched != 0 || st.Unfixable != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := wiki.InCategory(iabot.Category); len(got) != 1 {
		t.Errorf("article should stay categorized: %v", got)
	}
}

func TestMedicRedirectRescue(t *testing.T) {
	wiki := wikimedia.NewWiki()
	arch := archive.New()
	url := "http://ms.simtest/region/town/9204093.htm"
	deadArticle(wiki, "Art", url)
	// A 3xx capture with a unique target among siblings (§4.2).
	arch.Add(archive.Snapshot{
		URL: url, Day: d(2014, 1, 1), InitialStatus: 301, FinalStatus: 200,
		RedirectTo: "http://ms.simtest/lokales/town/index.htm",
	})
	arch.Add(archive.Snapshot{
		URL: "http://ms.simtest/region/town/111.htm", Day: d(2014, 2, 1),
		InitialStatus: 301, FinalStatus: 200,
		RedirectTo: "http://ms.simtest/lokales/town/other.htm",
	})

	// Without redirect rescue the link is unfixable.
	m1 := New(wiki, arch)
	if st := m1.Run(d(2022, 5, 1)); st.Unfixable != 1 {
		t.Fatalf("no-redirect stats = %+v", st)
	}
	// With it, the validated 3xx copy patches the link.
	m2 := New(wiki, arch)
	m2.AcceptRedirects = true
	m2.Checker = redircheck.NewChecker(arch)
	st := m2.Run(d(2022, 5, 1))
	if st.RedirectPatched != 1 || st.Unfixable != 0 {
		t.Fatalf("redirect stats = %+v", st)
	}
	if !strings.Contains(wiki.Article("Art").Current().Text, "web/20140101000000") {
		t.Errorf("text = %q", wiki.Article("Art").Current().Text)
	}
}

func TestMedicMassRedirectNotRescued(t *testing.T) {
	wiki := wikimedia.NewWiki()
	arch := archive.New()
	url := "http://news.simtest/old/a.html"
	deadArticle(wiki, "Art", url)
	// Mass redirect: every sibling redirects to the homepage.
	for _, p := range []string{"/old/a.html", "/old/b.html", "/old/c.html"} {
		arch.Add(archive.Snapshot{
			URL: "http://news.simtest" + p, Day: d(2014, 1, 1),
			InitialStatus: 302, FinalStatus: 200, RedirectTo: "http://news.simtest/",
		})
	}
	m := New(wiki, arch)
	m.AcceptRedirects = true
	m.Checker = redircheck.NewChecker(arch)
	st := m.Run(d(2022, 5, 1))
	if st.RedirectPatched != 0 || st.Unfixable != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMedicMixedArticle(t *testing.T) {
	wiki := wikimedia.NewWiki()
	arch := archive.New()
	fixable := "http://fix.simtest/p.html"
	hopeless := "http://hopeless.simtest/p.html"
	wiki.Create("Art", d(2010, 1, 1), "User",
		`<ref>[`+fixable+` F] {{dead link|date=January 2018|bot=InternetArchiveBot}}</ref>
<ref>[`+hopeless+` H] {{dead link|date=January 2018|bot=InternetArchiveBot}}</ref>
[[Category:`+iabot.Category+`]]`)
	arch.Add(archive.Snapshot{URL: fixable, Day: d(2012, 1, 1), InitialStatus: 200, FinalStatus: 200})

	m := New(wiki, arch)
	st := m.Run(d(2022, 5, 1))
	if st.Patched != 1 || st.Unfixable != 1 || st.DeadLinksSeen != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// One dead link remains: category stays.
	if got := wiki.InCategory(iabot.Category); len(got) != 1 {
		t.Errorf("category = %v", got)
	}
	cur := wiki.Article("Art").Current().Text
	if !strings.Contains(cur, "{{Webarchive|url=") {
		t.Errorf("fixable link not patched: %q", cur)
	}
}

func TestMedicFutureCopiesInvisible(t *testing.T) {
	wiki := wikimedia.NewWiki()
	arch := archive.New()
	url := "http://x.simtest/p.html"
	deadArticle(wiki, "Art", url)
	arch.Add(archive.Snapshot{URL: url, Day: d(2023, 1, 1), InitialStatus: 200, FinalStatus: 200})

	m := New(wiki, arch)
	st := m.Run(d(2022, 5, 1)) // runs before the capture exists
	if st.Patched != 0 || st.Unfixable != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMedicSkipsUntaggedLinks(t *testing.T) {
	wiki := wikimedia.NewWiki()
	arch := archive.New()
	wiki.Create("Art", d(2010, 1, 1), "User",
		`<ref>[http://ok.simtest/p.html P]</ref> [[Category:`+iabot.Category+`]]`)
	m := New(wiki, arch)
	st := m.Run(d(2022, 5, 1))
	if st.DeadLinksSeen != 0 {
		t.Errorf("stats = %+v", st)
	}
}
