// Retrier wraps Client with the robustness policy a production link
// checker runs and the paper's single-GET measurement conspicuously
// does not: bounded retries on transient failures with exponential
// backoff and deterministic jitter, Retry-After honoring, a per-link
// retry budget, and an optional IABot-style "confirmation" mode that
// requires N consecutive failed checks spaced D simulated days apart
// before a link counts as dead.
//
// Determinism: jitter is a pure hash of (JitterSeed, URL, attempt), so
// a given policy over a given universe always issues the same request
// schedule. Against a simweb transport the Retrier annotates each
// request with the attempt number (and, when Day is set, the simulated
// day), which is what lets a retry genuinely escape a transient-fault
// window.
package fetch

import (
	"context"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Fetcher is the interface shared by Client and Retrier: the study
// pipeline measures through it without caring whether retries are on.
type Fetcher interface {
	Fetch(ctx context.Context, rawURL string) Result
	FetchAll(ctx context.Context, urls []string, concurrency int) []Result
}

var (
	_ Fetcher = (*Client)(nil)
	_ Fetcher = (*Retrier)(nil)
)

// Simulation annotation headers, mirrored from simweb so this package
// stays transport-agnostic (equality is asserted by tests).
const (
	simDayHeader     = "X-Sim-Day"
	simAttemptHeader = "X-Sim-Attempt"
)

// NoDay disables day annotation: all checks happen "now".
const NoDay = -1

// Transient reports whether a result is worth retrying: DNS failures,
// timeouts, rate limiting (429), and server errors (5xx). Hard
// verdicts (200, 404, 403, ...) are final.
func Transient(res Result) bool {
	switch res.Category {
	case CatDNSFailure, CatTimeout:
		return true
	}
	return res.FinalStatus == http.StatusTooManyRequests || res.FinalStatus >= 500
}

// RetryPolicy configures a Retrier. The zero value degenerates to a
// single GET with no rechecks — exactly the bare Client's behaviour.
type RetryPolicy struct {
	// MaxAttempts bounds HTTP fetches per check (minimum 1).
	MaxAttempts int
	// BaseBackoff is the pre-jitter delay before the first retry; each
	// further retry doubles it. Default 500ms when zero.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry delay (0 = uncapped).
	MaxBackoff time.Duration
	// Budget caps the cumulative backoff spent on one link across all
	// checks; when the next planned delay would exceed what remains,
	// the Retrier gives up with the last observed result (0 = no cap).
	Budget time.Duration
	// RespectRetryAfter replaces the computed backoff with the
	// server's Retry-After advertisement when one was sent.
	RespectRetryAfter bool
	// JitterSeed decorrelates jitter between runs while keeping each
	// run deterministic.
	JitterSeed int64
	// ConfirmChecks, when > 1, enables confirmation mode: the link is
	// only reported dead after this many consecutive failed checks.
	// Any check that answers 200 ends the sequence alive.
	ConfirmChecks int
	// ConfirmSpacingDays separates consecutive checks in simulated
	// days (applied only when the Retrier has a Day).
	ConfirmSpacingDays int
}

// SingleGET is the paper's measurement policy: one GET, no retries, no
// confirmation.
func SingleGET() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

// DefaultRetryPolicy is a production-shaped retry policy: 3 attempts,
// 500ms base backoff doubling to at most 8s, a 30s per-link budget,
// honoring Retry-After.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:       3,
		BaseBackoff:       500 * time.Millisecond,
		MaxBackoff:        8 * time.Second,
		Budget:            30 * time.Second,
		RespectRetryAfter: true,
	}
}

// ConfirmationPolicy is DefaultRetryPolicy plus IABot's consecutive-
// failed-checks rule: checks failed checks spaced spacingDays apart
// must all fail before the link counts dead.
func ConfirmationPolicy(checks, spacingDays int) RetryPolicy {
	p := DefaultRetryPolicy()
	p.ConfirmChecks = checks
	p.ConfirmSpacingDays = spacingDays
	return p
}

// RetryStats aggregates a Retrier's activity. Safe for concurrent use;
// multiple Retriers may share one (the serving layer does).
type RetryStats struct {
	Attempts          atomic.Int64 // HTTP fetches issued
	Retries           atomic.Int64 // fetches that were retries
	Checks            atomic.Int64 // confirmation checks run
	Rechecks          atomic.Int64 // checks beyond the first
	RetryAfterHonored atomic.Int64 // backoffs replaced by Retry-After
	BudgetExhausted   atomic.Int64 // links abandoned mid-retry on budget
	RescuedByRetry    atomic.Int64 // checks that succeeded on a retry
	RescuedByRecheck  atomic.Int64 // links alive only on a later check
}

// RetryStatsSnapshot is a point-in-time copy of RetryStats, shaped for
// JSON (the /metrics endpoint).
type RetryStatsSnapshot struct {
	Attempts          int64 `json:"attempts"`
	Retries           int64 `json:"retries"`
	Checks            int64 `json:"checks"`
	Rechecks          int64 `json:"rechecks"`
	RetryAfterHonored int64 `json:"retry_after_honored"`
	BudgetExhausted   int64 `json:"budget_exhausted"`
	RescuedByRetry    int64 `json:"rescued_by_retry"`
	RescuedByRecheck  int64 `json:"rescued_by_recheck"`
}

// Snapshot copies the counters.
func (st *RetryStats) Snapshot() RetryStatsSnapshot {
	return RetryStatsSnapshot{
		Attempts:          st.Attempts.Load(),
		Retries:           st.Retries.Load(),
		Checks:            st.Checks.Load(),
		Rechecks:          st.Rechecks.Load(),
		RetryAfterHonored: st.RetryAfterHonored.Load(),
		BudgetExhausted:   st.BudgetExhausted.Load(),
		RescuedByRetry:    st.RescuedByRetry.Load(),
		RescuedByRecheck:  st.RescuedByRecheck.Load(),
	}
}

// SleepFunc waits for d or until ctx is done (returning ctx's error).
type SleepFunc func(ctx context.Context, d time.Duration) error

// NopSleep elides backoff waits — simulated time: delays are pure
// accounting against the budget, not wall-clock.
func NopSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

func realSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Retrier applies a RetryPolicy on top of a Client. Construct with
// NewRetrier; the fields may then be adjusted before first use.
type Retrier struct {
	Client *Client
	Policy RetryPolicy
	// Day is the simulated day of the first check (NoDay disables day
	// annotation; confirmation spacing then has no day to advance).
	Day int
	// Stats receives counters; NewRetrier installs a private instance,
	// callers may swap in a shared one.
	Stats *RetryStats
	// Sleep implements backoff waits; defaults to a real timer. Use
	// NopSleep under simulated transports.
	Sleep SleepFunc
}

// NewRetrier wraps a Client with the given policy.
func NewRetrier(c *Client, p RetryPolicy) *Retrier {
	return &Retrier{Client: c, Policy: p, Day: NoDay, Stats: new(RetryStats), Sleep: realSleep}
}

// Fetch runs the full policy for one URL: up to ConfirmChecks checks,
// each up to MaxAttempts fetches, returning the first passing result
// or the last failing one.
func (r *Retrier) Fetch(ctx context.Context, rawURL string) Result {
	checks := r.Policy.ConfirmChecks
	if checks < 1 {
		checks = 1
	}
	day := r.Day
	attempt := 0
	budget := r.Policy.Budget
	var res Result
	for check := 0; check < checks; check++ {
		if check > 0 {
			r.Stats.Rechecks.Add(1)
			if day != NoDay {
				day += r.Policy.ConfirmSpacingDays
			}
		}
		r.Stats.Checks.Add(1)
		res = r.runCheck(ctx, rawURL, day, &attempt, &budget)
		if res.FinalStatus == http.StatusOK {
			if check > 0 {
				r.Stats.RescuedByRecheck.Add(1)
			}
			break
		}
		if ctx.Err() != nil {
			break
		}
	}
	res.Attempts = attempt
	return res
}

// FetchAll fetches urls through the policy with a bounded worker pool,
// preserving input order (see Client.FetchAll for cancellation
// semantics).
func (r *Retrier) FetchAll(ctx context.Context, urls []string, concurrency int) []Result {
	return fetchAll(ctx, urls, concurrency, func(ctx context.Context, u string) Result {
		return r.Fetch(ctx, u)
	})
}

// runCheck is one check: a fetch plus transient-failure retries.
// attempt and budget persist across the checks of one link.
func (r *Retrier) runCheck(ctx context.Context, rawURL string, day int, attempt *int, budget *time.Duration) Result {
	max := r.Policy.MaxAttempts
	if max < 1 {
		max = 1
	}
	var res Result
	for try := 0; ; try++ {
		h := r.annotate(day, *attempt)
		*attempt++
		r.Stats.Attempts.Add(1)
		if try > 0 {
			r.Stats.Retries.Add(1)
		}
		res = r.Client.FetchWithHeaders(ctx, rawURL, h)
		if !Transient(res) {
			if try > 0 {
				r.Stats.RescuedByRetry.Add(1)
			}
			return res
		}
		if try+1 >= max || ctx.Err() != nil {
			return res
		}
		d := r.backoff(rawURL, try, res)
		if r.Policy.Budget > 0 {
			if d > *budget {
				r.Stats.BudgetExhausted.Add(1)
				return res
			}
			*budget -= d
		}
		if err := r.sleep(ctx, d); err != nil {
			return res
		}
	}
}

// annotate builds the simulation headers for one attempt. Attempt 0
// with no day produces nil — indistinguishable from a bare Client.
func (r *Retrier) annotate(day, attempt int) http.Header {
	if day == NoDay && attempt == 0 {
		return nil
	}
	h := make(http.Header, 2)
	if day != NoDay {
		h.Set(simDayHeader, strconv.Itoa(day))
	}
	if attempt > 0 {
		h.Set(simAttemptHeader, strconv.Itoa(attempt))
	}
	return h
}

// backoff computes the delay before retry number try+1: exponential
// from BaseBackoff with deterministic jitter in [50%, 100%], overridden
// by the server's Retry-After when the policy honors it.
func (r *Retrier) backoff(rawURL string, try int, last Result) time.Duration {
	if r.Policy.RespectRetryAfter && last.RetryAfter > 0 {
		d := last.RetryAfter
		if r.Policy.MaxBackoff > 0 && d > r.Policy.MaxBackoff {
			d = r.Policy.MaxBackoff
		}
		r.Stats.RetryAfterHonored.Add(1)
		return d
	}
	d := r.Policy.BaseBackoff
	if d <= 0 {
		d = 500 * time.Millisecond
	}
	for i := 0; i < try; i++ {
		d *= 2
		if r.Policy.MaxBackoff > 0 && d >= r.Policy.MaxBackoff {
			break
		}
	}
	if r.Policy.MaxBackoff > 0 && d > r.Policy.MaxBackoff {
		d = r.Policy.MaxBackoff
	}
	// Half-jitter: keep at least 50% of the computed delay so budgets
	// stay meaningful, derived from a hash so runs are reproducible.
	frac := jitterFrac(uint64(r.Policy.JitterSeed), rawURL, try)
	return d/2 + time.Duration(frac*float64(d/2))
}

func (r *Retrier) sleep(ctx context.Context, d time.Duration) error {
	if r.Sleep != nil {
		return r.Sleep(ctx, d)
	}
	return realSleep(ctx, d)
}

// jitterFrac hashes (seed, url, try) to a float in [0, 1).
func jitterFrac(seed uint64, rawURL string, try int) float64 {
	x := seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(rawURL); i++ {
		x = (x ^ uint64(rawURL[i])) * 0x100000001b3
	}
	x ^= uint64(int64(try)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
