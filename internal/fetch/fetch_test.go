package fetch

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"permadead/internal/simclock"
	"permadead/internal/simweb"
)

func testWorld() *simweb.World {
	w := simweb.NewWorld()
	created := simclock.FromDate(2008, 1, 1)

	ok := w.AddSite("ok.simtest", created)
	ok.AddPage("/page.html", created)

	dead := w.AddSite("dnsdead.simtest", created)
	dead.DNSDiesAt = simclock.FromDate(2020, 1, 1)

	hang := w.AddSite("hang.simtest", created)
	hang.TimeoutFrom = created

	redir := w.AddSite("redir.simtest", created)
	pg := redir.AddPage("/old.html", created)
	pg.MovedAt = created.Add(10)
	pg.NewPath = "/new.html"
	pg.RedirectFrom = created.Add(10)
	redir.AddPage("/new.html", created.Add(10))

	soft := w.AddSite("soft.simtest", created)
	soft.ErrorStyle = simweb.SoftRedirectHome

	geo := w.AddSite("geo.simtest", created)
	geo.GeoBlockedFrom = created

	loop := w.AddSite("loop.simtest", created)
	a := loop.AddPage("/a", created)
	a.MovedAt = created
	a.NewPath = "/b"
	a.RedirectFrom = created
	b := loop.AddPage("/b", created)
	b.MovedAt = created
	b.NewPath = "/a"
	b.RedirectFrom = created

	return w
}

func testClient(w *simweb.World, opts ...Option) *Client {
	return New(simweb.NewTransport(w, simclock.StudyTime), opts...)
}

func TestFetch200(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://ok.simtest/page.html")
	if res.Category != Cat200 {
		t.Fatalf("category = %v, err = %v", res.Category, res.Err)
	}
	if res.InitialStatus != 200 || res.FinalStatus != 200 {
		t.Errorf("statuses: initial=%d final=%d", res.InitialStatus, res.FinalStatus)
	}
	if res.Redirected {
		t.Error("no redirect expected")
	}
	if !strings.Contains(res.Body, "<html>") {
		t.Error("body missing")
	}
	if len(res.Hops) != 1 {
		t.Errorf("hops = %d", len(res.Hops))
	}
}

func TestFetch404(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://ok.simtest/missing.html")
	if res.Category != Cat404 || res.FinalStatus != 404 {
		t.Fatalf("%+v", res)
	}
}

func TestFetchDNSFailure(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://dnsdead.simtest/x")
	if res.Category != CatDNSFailure {
		t.Fatalf("category = %v, err = %v", res.Category, res.Err)
	}
	if res.Err == nil {
		t.Error("expected error")
	}
	res = c.Fetch(context.Background(), "http://neverexisted.simtest/")
	if res.Category != CatDNSFailure {
		t.Fatalf("unknown host category = %v", res.Category)
	}
}

func TestFetchTimeout(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://hang.simtest/")
	if res.Category != CatTimeout {
		t.Fatalf("category = %v, err = %v", res.Category, res.Err)
	}
}

func TestFetchRedirectChain(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://redir.simtest/old.html")
	if res.Category != Cat200 {
		t.Fatalf("category = %v, err = %v", res.Category, res.Err)
	}
	// The paper's initial vs final status distinction (§2.4).
	if res.InitialStatus != 301 {
		t.Errorf("initial status = %d, want 301", res.InitialStatus)
	}
	if res.FinalStatus != 200 {
		t.Errorf("final status = %d, want 200", res.FinalStatus)
	}
	if !res.Redirected {
		t.Error("Redirected should be true")
	}
	if len(res.Hops) != 2 {
		t.Fatalf("hops = %v", res.Hops)
	}
	if !strings.HasSuffix(res.FinalURL, "/new.html") {
		t.Errorf("final URL = %q", res.FinalURL)
	}
}

func TestFetchSoftRedirect(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://soft.simtest/gone/article.html")
	// Redirects home and answers 200: classified 200, the soft-404 case
	// the detector must catch downstream.
	if res.Category != Cat200 || !res.Redirected {
		t.Fatalf("%+v", res)
	}
	if res.InitialStatus != 302 {
		t.Errorf("initial = %d", res.InitialStatus)
	}
}

func TestFetchOther(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://geo.simtest/")
	if res.Category != CatOther || res.FinalStatus != 403 {
		t.Fatalf("%+v", res)
	}
}

func TestFetchRedirectLoop(t *testing.T) {
	c := testClient(testWorld(), WithMaxRedirects(5))
	res := c.Fetch(context.Background(), "http://loop.simtest/a")
	if res.Category != CatOther {
		t.Fatalf("loop category = %v", res.Category)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "redirects") {
		t.Errorf("err = %v", res.Err)
	}
}

func TestFetchInvalidURL(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://bad url with spaces/")
	if res.Category != CatOther || res.Err == nil {
		t.Fatalf("%+v", res)
	}
}

func TestFetchAllPreservesOrder(t *testing.T) {
	c := testClient(testWorld())
	urls := []string{
		"http://ok.simtest/page.html",
		"http://ok.simtest/missing.html",
		"http://dnsdead.simtest/x",
		"http://geo.simtest/",
	}
	results := c.FetchAll(context.Background(), urls, 4)
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	want := []Category{Cat200, Cat404, CatDNSFailure, CatOther}
	for i, r := range results {
		if r.URL != urls[i] {
			t.Errorf("result[%d] order broken: %q", i, r.URL)
		}
		if r.Category != want[i] {
			t.Errorf("result[%d] = %v, want %v", i, r.Category, want[i])
		}
	}
}

func TestFetchContextCancelled(t *testing.T) {
	c := testClient(testWorld())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := c.Fetch(ctx, "http://ok.simtest/page.html")
	if res.Err == nil {
		t.Error("cancelled context should error")
	}
}

func TestCategoryStrings(t *testing.T) {
	want := []string{"DNS Failure", "Timeout", "404", "200", "Other"}
	for i, cat := range Categories {
		if cat.String() != want[i] {
			t.Errorf("category %d = %q, want %q", i, cat.String(), want[i])
		}
	}
	if Category(99).String() != "Unknown" {
		t.Error("unknown category string")
	}
}

func TestWithOptions(t *testing.T) {
	w := testWorld()
	c := New(simweb.NewTransport(w, simclock.StudyTime),
		WithTimeout(5*time.Second),
		WithMaxBody(10),
		WithUserAgent("test-agent"),
	)
	res := c.Fetch(context.Background(), "http://ok.simtest/page.html")
	if len(res.Body) > 10 {
		t.Errorf("body length %d exceeds WithMaxBody(10)", len(res.Body))
	}
	if res.Category != Cat200 {
		t.Errorf("category = %v", res.Category)
	}
}

// TestParseRetryAfter covers both header forms RFC 9110 allows. The
// HTTP-date form used to parse silently to 0, which defeated the
// Retrier's Retry-After honoring whenever an origin advertised an
// absolute retry time instead of delay-seconds.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2022, 6, 15, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"absent", "", 0},
		{"seconds", "120", 120 * time.Second},
		{"seconds with space", " 7 ", 7 * time.Second},
		{"zero seconds", "0", 0},
		{"negative seconds", "-5", 0},
		{"http date ahead", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http date rfc850", now.Add(time.Hour).Format("Monday, 02-Jan-06 15:04:05 GMT"), time.Hour},
		{"http date asctime", now.Add(30 * time.Second).Format(time.ANSIC), 30 * time.Second},
		{"http date elapsed", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"garbage", "soon", 0},
		{"float seconds", "1.5", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.v, now); got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", tc.name, tc.v, got, tc.want)
		}
	}
}

// TestResponseTimeAnchorsOnDateHeader: HTTP-date math must use the
// server's own clock (its Date header) when present, so skew between
// the origin and the client cannot inflate or erase the delay.
func TestResponseTimeAnchorsOnDateHeader(t *testing.T) {
	served := time.Date(2022, 6, 15, 12, 0, 0, 0, time.UTC)
	h := http.Header{}
	h.Set("Date", served.Format(http.TimeFormat))
	if got := responseTime(h); !got.Equal(served) {
		t.Errorf("responseTime with Date header = %v, want %v", got, served)
	}
	// Retry 10 minutes after the server's Date, regardless of local time.
	after := served.Add(10 * time.Minute).Format(http.TimeFormat)
	if got := parseRetryAfter(after, responseTime(h)); got != 10*time.Minute {
		t.Errorf("date-anchored Retry-After = %v, want 10m", got)
	}
	if before := responseTime(http.Header{}); time.Since(before) > time.Minute {
		t.Errorf("responseTime without Date header should be ~now, got %v", before)
	}
}
