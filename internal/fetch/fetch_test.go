package fetch

import (
	"context"
	"strings"
	"testing"
	"time"

	"permadead/internal/simclock"
	"permadead/internal/simweb"
)

func testWorld() *simweb.World {
	w := simweb.NewWorld()
	created := simclock.FromDate(2008, 1, 1)

	ok := w.AddSite("ok.simtest", created)
	ok.AddPage("/page.html", created)

	dead := w.AddSite("dnsdead.simtest", created)
	dead.DNSDiesAt = simclock.FromDate(2020, 1, 1)

	hang := w.AddSite("hang.simtest", created)
	hang.TimeoutFrom = created

	redir := w.AddSite("redir.simtest", created)
	pg := redir.AddPage("/old.html", created)
	pg.MovedAt = created.Add(10)
	pg.NewPath = "/new.html"
	pg.RedirectFrom = created.Add(10)
	redir.AddPage("/new.html", created.Add(10))

	soft := w.AddSite("soft.simtest", created)
	soft.ErrorStyle = simweb.SoftRedirectHome

	geo := w.AddSite("geo.simtest", created)
	geo.GeoBlockedFrom = created

	loop := w.AddSite("loop.simtest", created)
	a := loop.AddPage("/a", created)
	a.MovedAt = created
	a.NewPath = "/b"
	a.RedirectFrom = created
	b := loop.AddPage("/b", created)
	b.MovedAt = created
	b.NewPath = "/a"
	b.RedirectFrom = created

	return w
}

func testClient(w *simweb.World, opts ...Option) *Client {
	return New(simweb.NewTransport(w, simclock.StudyTime), opts...)
}

func TestFetch200(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://ok.simtest/page.html")
	if res.Category != Cat200 {
		t.Fatalf("category = %v, err = %v", res.Category, res.Err)
	}
	if res.InitialStatus != 200 || res.FinalStatus != 200 {
		t.Errorf("statuses: initial=%d final=%d", res.InitialStatus, res.FinalStatus)
	}
	if res.Redirected {
		t.Error("no redirect expected")
	}
	if !strings.Contains(res.Body, "<html>") {
		t.Error("body missing")
	}
	if len(res.Hops) != 1 {
		t.Errorf("hops = %d", len(res.Hops))
	}
}

func TestFetch404(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://ok.simtest/missing.html")
	if res.Category != Cat404 || res.FinalStatus != 404 {
		t.Fatalf("%+v", res)
	}
}

func TestFetchDNSFailure(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://dnsdead.simtest/x")
	if res.Category != CatDNSFailure {
		t.Fatalf("category = %v, err = %v", res.Category, res.Err)
	}
	if res.Err == nil {
		t.Error("expected error")
	}
	res = c.Fetch(context.Background(), "http://neverexisted.simtest/")
	if res.Category != CatDNSFailure {
		t.Fatalf("unknown host category = %v", res.Category)
	}
}

func TestFetchTimeout(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://hang.simtest/")
	if res.Category != CatTimeout {
		t.Fatalf("category = %v, err = %v", res.Category, res.Err)
	}
}

func TestFetchRedirectChain(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://redir.simtest/old.html")
	if res.Category != Cat200 {
		t.Fatalf("category = %v, err = %v", res.Category, res.Err)
	}
	// The paper's initial vs final status distinction (§2.4).
	if res.InitialStatus != 301 {
		t.Errorf("initial status = %d, want 301", res.InitialStatus)
	}
	if res.FinalStatus != 200 {
		t.Errorf("final status = %d, want 200", res.FinalStatus)
	}
	if !res.Redirected {
		t.Error("Redirected should be true")
	}
	if len(res.Hops) != 2 {
		t.Fatalf("hops = %v", res.Hops)
	}
	if !strings.HasSuffix(res.FinalURL, "/new.html") {
		t.Errorf("final URL = %q", res.FinalURL)
	}
}

func TestFetchSoftRedirect(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://soft.simtest/gone/article.html")
	// Redirects home and answers 200: classified 200, the soft-404 case
	// the detector must catch downstream.
	if res.Category != Cat200 || !res.Redirected {
		t.Fatalf("%+v", res)
	}
	if res.InitialStatus != 302 {
		t.Errorf("initial = %d", res.InitialStatus)
	}
}

func TestFetchOther(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://geo.simtest/")
	if res.Category != CatOther || res.FinalStatus != 403 {
		t.Fatalf("%+v", res)
	}
}

func TestFetchRedirectLoop(t *testing.T) {
	c := testClient(testWorld(), WithMaxRedirects(5))
	res := c.Fetch(context.Background(), "http://loop.simtest/a")
	if res.Category != CatOther {
		t.Fatalf("loop category = %v", res.Category)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "redirects") {
		t.Errorf("err = %v", res.Err)
	}
}

func TestFetchInvalidURL(t *testing.T) {
	c := testClient(testWorld())
	res := c.Fetch(context.Background(), "http://bad url with spaces/")
	if res.Category != CatOther || res.Err == nil {
		t.Fatalf("%+v", res)
	}
}

func TestFetchAllPreservesOrder(t *testing.T) {
	c := testClient(testWorld())
	urls := []string{
		"http://ok.simtest/page.html",
		"http://ok.simtest/missing.html",
		"http://dnsdead.simtest/x",
		"http://geo.simtest/",
	}
	results := c.FetchAll(context.Background(), urls, 4)
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	want := []Category{Cat200, Cat404, CatDNSFailure, CatOther}
	for i, r := range results {
		if r.URL != urls[i] {
			t.Errorf("result[%d] order broken: %q", i, r.URL)
		}
		if r.Category != want[i] {
			t.Errorf("result[%d] = %v, want %v", i, r.Category, want[i])
		}
	}
}

func TestFetchContextCancelled(t *testing.T) {
	c := testClient(testWorld())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := c.Fetch(ctx, "http://ok.simtest/page.html")
	if res.Err == nil {
		t.Error("cancelled context should error")
	}
}

func TestCategoryStrings(t *testing.T) {
	want := []string{"DNS Failure", "Timeout", "404", "200", "Other"}
	for i, cat := range Categories {
		if cat.String() != want[i] {
			t.Errorf("category %d = %q, want %q", i, cat.String(), want[i])
		}
	}
	if Category(99).String() != "Unknown" {
		t.Error("unknown category string")
	}
}

func TestWithOptions(t *testing.T) {
	w := testWorld()
	c := New(simweb.NewTransport(w, simclock.StudyTime),
		WithTimeout(5*time.Second),
		WithMaxBody(10),
		WithUserAgent("test-agent"),
	)
	res := c.Fetch(context.Background(), "http://ok.simtest/page.html")
	if len(res.Body) > 10 {
		t.Errorf("body length %d exceeds WithMaxBody(10)", len(res.Body))
	}
	if res.Category != Cat200 {
		t.Errorf("category = %v", res.Category)
	}
}
