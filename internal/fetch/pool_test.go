package fetch

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// probeTransport is a scripted RoundTripper that tracks request
// concurrency, so the pool's bounds are observable without a network.
type probeTransport struct {
	started       atomic.Int32
	inflight      atomic.Int32
	maxInflight   atomic.Int32
	maxGoroutines atomic.Int32
	// block, when non-nil, parks every request until closed (or the
	// request context is cancelled).
	block chan struct{}
	// respond overrides the default 200 response.
	respond func(req *http.Request) (*http.Response, error)
}

func (t *probeTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.started.Add(1)
	n := t.inflight.Add(1)
	defer t.inflight.Add(-1)
	for {
		max := t.maxInflight.Load()
		if n <= max || t.maxInflight.CompareAndSwap(max, n) {
			break
		}
	}
	for {
		g := int32(runtime.NumGoroutine())
		max := t.maxGoroutines.Load()
		if g <= max || t.maxGoroutines.CompareAndSwap(max, g) {
			break
		}
	}
	if t.block != nil {
		select {
		case <-t.block:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if t.respond != nil {
		return t.respond(req)
	}
	return okResponse(req), nil
}

func okResponse(req *http.Request) *http.Response {
	return &http.Response{
		StatusCode: 200,
		Body:       io.NopCloser(strings.NewReader("ok")),
		Header:     make(http.Header),
		Request:    req,
	}
}

func manyURLs(n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = "http://pool.simtest/page-" + string(rune('a'+i%26)) + ".html"
	}
	return urls
}

func TestFetchAllBoundedWorkers(t *testing.T) {
	tr := &probeTransport{}
	c := New(tr)
	base := runtime.NumGoroutine()
	const conc = 5
	results := c.FetchAll(context.Background(), manyURLs(200), conc)
	if len(results) != 200 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Category != Cat200 || r.Err != nil {
			t.Fatalf("result[%d]: %+v", i, r)
		}
	}
	if max := tr.maxInflight.Load(); max > conc {
		t.Errorf("max in-flight requests = %d, concurrency bound %d", max, conc)
	}
	// The pool spawns `conc` workers, not one goroutine per URL. Allow
	// generous slack for runtime/test goroutines.
	if max := int(tr.maxGoroutines.Load()); max > base+conc+20 {
		t.Errorf("max goroutines = %d (base %d): pool is not bounded", max, base)
	}
}

func TestFetchAllCancelStopsDispatch(t *testing.T) {
	tr := &probeTransport{block: make(chan struct{})}
	c := New(tr)
	ctx, cancel := context.WithCancel(context.Background())

	const n, conc = 40, 3
	done := make(chan []Result, 1)
	go func() { done <- c.FetchAll(ctx, manyURLs(n), conc) }()

	// Wait until the pool is saturated, then cancel mid-run.
	deadline := time.After(5 * time.Second)
	for tr.inflight.Load() < conc {
		select {
		case <-deadline:
			t.Fatal("pool never saturated")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()

	var results []Result
	select {
	case results = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("FetchAll did not return after cancellation")
	}

	if len(results) != n {
		t.Fatalf("got %d results, want %d (order/shape must survive cancellation)", len(results), n)
	}
	// Dispatch stopped: far fewer requests started than URLs given.
	// At most the saturated workers plus one extra round can have
	// started before the dispatcher observed the cancellation.
	if s := tr.started.Load(); s >= n {
		t.Errorf("%d of %d fetches started after cancel: dispatch did not stop", s, n)
	}
	undispatched := 0
	for i, r := range results {
		if r.URL == "" {
			t.Fatalf("result[%d] missing URL", i)
		}
		if r.Err != nil && errors.Is(r.Err, context.Canceled) && len(r.Hops) == 0 {
			undispatched++
		}
	}
	if undispatched == 0 {
		t.Error("expected undispatched URLs marked with context.Canceled")
	}
}

func TestFetchAllPreCancelledDispatchesNothing(t *testing.T) {
	tr := &probeTransport{}
	c := New(tr)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := c.FetchAll(ctx, manyURLs(25), 4)
	if len(results) != 25 {
		t.Fatalf("got %d results", len(results))
	}
	if s := tr.started.Load(); s != 0 {
		t.Errorf("%d fetches started under a pre-cancelled context", s)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) || r.Category != CatOther {
			t.Errorf("result[%d] = %+v, want context.Canceled / Other", i, r)
		}
	}
}

func TestFetchAllEmptyAndSmall(t *testing.T) {
	tr := &probeTransport{}
	c := New(tr)
	if got := c.FetchAll(context.Background(), nil, 8); len(got) != 0 {
		t.Errorf("empty input: %d results", len(got))
	}
	// Concurrency above len(urls) and below 1 both work.
	if got := c.FetchAll(context.Background(), manyURLs(2), 64); len(got) != 2 {
		t.Errorf("small input: %d results", len(got))
	}
	if got := c.FetchAll(context.Background(), manyURLs(3), 0); len(got) != 3 {
		t.Errorf("conc 0: %d results", len(got))
	}
}

// --- classifyError exotic paths ---

type timeoutNetErr struct{}

func (timeoutNetErr) Error() string   { return "deadline would be exceeded" }
func (timeoutNetErr) Timeout() bool   { return true }
func (timeoutNetErr) Temporary() bool { return true }

func TestClassifyErrorExotic(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Category
	}{
		{"wrapped deadline", &url.Error{Op: "Get", URL: "http://x/", Err: context.DeadlineExceeded}, CatTimeout},
		{"wrapped net timeout", &url.Error{Op: "Get", URL: "http://x/", Err: timeoutNetErr{}}, CatTimeout},
		{"doubly wrapped dns", &url.Error{Op: "Get", URL: "http://x/",
			Err: &net.OpError{Op: "dial", Err: &net.DNSError{Err: "no such host", Name: "x"}}}, CatDNSFailure},
		{"client timeout string", errors.New(`Get "http://x/": Client.Timeout exceeded while awaiting headers`), CatTimeout},
		{"plain failure", errors.New("connection reset by peer"), CatOther},
	}
	for _, c := range cases {
		if got := classifyError(c.err); got != c.want {
			t.Errorf("%s: classified %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFetchDNSErrorInsideRedirectHop(t *testing.T) {
	// First hop redirects to a host whose DNS lookup fails: the fetch
	// must classify by the error on the *later* hop and keep the
	// recorded chain.
	tr := &probeTransport{respond: func(req *http.Request) (*http.Response, error) {
		if req.URL.Host == "gone.simtest" {
			return nil, &net.OpError{Op: "dial", Err: &net.DNSError{Err: "no such host", Name: "gone.simtest"}}
		}
		resp := okResponse(req)
		resp.StatusCode = http.StatusFound
		resp.Header.Set("Location", "http://gone.simtest/moved")
		return resp, nil
	}}
	c := New(tr)
	res := c.Fetch(context.Background(), "http://alive.simtest/old")
	if res.Category != CatDNSFailure {
		t.Fatalf("category = %v, err = %v", res.Category, res.Err)
	}
	if res.InitialStatus != http.StatusFound || !res.Redirected || len(res.Hops) != 1 {
		t.Errorf("redirect chain not recorded: %+v", res)
	}
}

func TestFetchTimeoutInsideRedirectHop(t *testing.T) {
	tr := &probeTransport{respond: func(req *http.Request) (*http.Response, error) {
		if req.URL.Host == "slow.simtest" {
			return nil, &url.Error{Op: "Get", URL: req.URL.String(), Err: timeoutNetErr{}}
		}
		resp := okResponse(req)
		resp.StatusCode = http.StatusMovedPermanently
		resp.Header.Set("Location", "http://slow.simtest/next")
		return resp, nil
	}}
	c := New(tr)
	res := c.Fetch(context.Background(), "http://alive.simtest/old")
	if res.Category != CatTimeout {
		t.Fatalf("category = %v, err = %v", res.Category, res.Err)
	}
}
