// Package fetch is the study's live-web measurement client. It issues
// HTTP GET requests, follows redirects while recording the full chain,
// and classifies each fetch into the five outcome categories of
// Figure 4: DNS Failure, Timeout, 404, 200, and Other.
//
// The paper distinguishes a URL's *initial* status code (the response
// to the first request, before redirections) from its *final* status
// code (after all redirections, §2.4); Result captures both plus every
// intermediate hop.
package fetch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Category is the paper's five-way classification of a live fetch.
type Category uint8

const (
	// CatDNSFailure: DNS resolution for the hostname returned an error.
	CatDNSFailure Category = iota
	// CatTimeout: TCP or TLS connection setup (or the request) timed out.
	CatTimeout
	// Cat404: the final status code was 404 (Not Found).
	Cat404
	// Cat200: the final status code was 200 (OK).
	Cat200
	// CatOther: any other final status code (e.g. 403, 503) or
	// transport error.
	CatOther
)

// Categories lists all categories in the order Figure 4 plots them.
var Categories = []Category{CatDNSFailure, CatTimeout, Cat404, Cat200, CatOther}

func (c Category) String() string {
	switch c {
	case CatDNSFailure:
		return "DNS Failure"
	case CatTimeout:
		return "Timeout"
	case Cat404:
		return "404"
	case Cat200:
		return "200"
	case CatOther:
		return "Other"
	default:
		return "Unknown"
	}
}

// Hop is one response in a redirect chain.
type Hop struct {
	URL      string
	Status   int
	Location string
}

// Result is the full outcome of fetching one URL.
type Result struct {
	URL      string
	Category Category
	// InitialStatus is the status code of the first response (0 when
	// no response was received at all).
	InitialStatus int
	// FinalStatus is the status code after all redirections (0 when
	// no final response was received).
	FinalStatus int
	// FinalURL is the URL that produced the final response.
	FinalURL string
	// Redirected reports whether at least one redirect was followed.
	Redirected bool
	// Hops is the redirect chain, ending with the final response.
	Hops []Hop
	// Body is the final response body (possibly truncated to
	// MaxBodyBytes).
	Body string
	// Err is the transport error for DNS/timeout/other failures.
	Err error
	// RetryAfter is the final response's Retry-After advertisement
	// (either the integer-seconds or the HTTP-date form; zero when
	// absent or malformed).
	RetryAfter time.Duration
	// Attempts is the total number of HTTP fetches a Retrier spent on
	// this result, retries and confirmation rechecks included. A bare
	// Client leaves it zero.
	Attempts int
}

// Client fetches URLs and classifies outcomes. The zero value is not
// usable; construct with New.
type Client struct {
	hc           *http.Client
	maxRedirects int
	maxBody      int64
	userAgent    string
}

// Option configures a Client.
type Option func(*Client)

// WithTimeout bounds each fetch end-to-end. Default 30s.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.hc.Timeout = d }
}

// WithMaxRedirects bounds the redirect chain length. Default 10,
// matching net/http's own limit.
func WithMaxRedirects(n int) Option {
	return func(c *Client) { c.maxRedirects = n }
}

// WithMaxBody bounds how much of the final body is retained. Default 256 KiB.
func WithMaxBody(n int64) Option {
	return func(c *Client) { c.maxBody = n }
}

// WithUserAgent sets the User-Agent header sent on every request.
func WithUserAgent(ua string) Option {
	return func(c *Client) { c.userAgent = ua }
}

// New builds a Client over the given transport. Pass a *simweb.Transport
// for simulated fetches or an *http.Transport for real ones.
func New(rt http.RoundTripper, opts ...Option) *Client {
	c := &Client{
		hc:           &http.Client{Transport: rt, Timeout: 30 * time.Second},
		maxRedirects: 10,
		maxBody:      256 << 10,
		userAgent:    "permadead-study/1.0 (link-rot measurement)",
	}
	// Redirects are followed manually in Fetch so every hop is
	// recorded; disable the client's own following.
	c.hc.CheckRedirect = func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Fetch GETs rawURL, following redirects up to the configured limit,
// and classifies the outcome.
func (c *Client) Fetch(ctx context.Context, rawURL string) Result {
	return c.FetchWithHeaders(ctx, rawURL, nil)
}

// FetchWithHeaders is Fetch with extra request headers applied to
// every hop — how the Retrier threads the simulation's day and attempt
// annotations through without the Client knowing about them.
func (c *Client) FetchWithHeaders(ctx context.Context, rawURL string, extra http.Header) Result {
	res := Result{URL: rawURL}
	current := rawURL
	for hop := 0; ; hop++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, current, nil)
		if err != nil {
			// Unparseable URLs (typos in the dataset) cannot even be
			// requested; treat as Other with the parse error attached.
			res.Category, res.Err = CatOther, err
			return res
		}
		req.Header.Set("User-Agent", c.userAgent)
		for k, vs := range extra {
			for _, v := range vs {
				req.Header.Set(k, v)
			}
		}

		resp, err := c.hc.Do(req)
		if err != nil {
			res.Category, res.Err = classifyError(err), err
			return res
		}

		body, readErr := readBody(resp, c.maxBody)
		loc := resp.Header.Get("Location")
		res.Hops = append(res.Hops, Hop{URL: current, Status: resp.StatusCode, Location: loc})
		if hop == 0 {
			res.InitialStatus = resp.StatusCode
		}
		res.FinalStatus = resp.StatusCode
		res.FinalURL = current
		res.Body = body
		res.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), responseTime(resp.Header))
		if readErr != nil {
			// The transport died mid-body: a truncated read is a failed
			// fetch, not a Cat200 with a short body (which would poison
			// the soft-404 shingle comparison downstream).
			res.Category, res.Err = classifyError(readErr), readErr
			return res
		}

		if !isRedirect(resp.StatusCode) || loc == "" {
			res.Category = classifyStatus(resp.StatusCode)
			return res
		}
		if hop+1 > c.maxRedirects {
			res.Category = CatOther
			res.Err = fmt.Errorf("fetch: stopped after %d redirects", c.maxRedirects)
			return res
		}
		next, err := resp.Request.URL.Parse(loc)
		if err != nil {
			res.Category = CatOther
			res.Err = fmt.Errorf("fetch: bad Location %q: %w", loc, err)
			return res
		}
		res.Redirected = true
		current = next.String()
	}
}

// FetchAll fetches urls with a pool of `concurrency` worker
// goroutines, preserving input order in the returned slice. The
// dispatcher stops handing out work as soon as ctx is cancelled;
// URLs never dispatched come back with the context's error attached
// (Category Other) so the result slice always lines up with the
// input. At most `concurrency` goroutines ever exist, regardless of
// len(urls).
func (c *Client) FetchAll(ctx context.Context, urls []string, concurrency int) []Result {
	return fetchAll(ctx, urls, concurrency, c.Fetch)
}

// fetchAll is the worker-pool engine shared by Client.FetchAll and
// Retrier.FetchAll: fn is invoked once per URL from at most
// `concurrency` goroutines.
func fetchAll(ctx context.Context, urls []string, concurrency int, fn func(context.Context, string) Result) []Result {
	if concurrency < 1 {
		concurrency = 1
	}
	if concurrency > len(urls) {
		concurrency = len(urls)
	}
	results := make([]Result, len(urls))
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(concurrency)
	for w := 0; w < concurrency; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = fn(ctx, urls[i])
			}
		}()
	}

	next := 0
dispatch:
	for ; next < len(urls); next++ {
		// Check first so an already-cancelled context dispatches
		// nothing (select would pick randomly between ready cases).
		if ctx.Err() != nil {
			break
		}
		select {
		case jobs <- next:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	for i := next; i < len(urls); i++ {
		results[i] = Result{URL: urls[i], Category: CatOther, Err: ctx.Err()}
	}
	return results
}

func readBody(resp *http.Response, limit int64) (string, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	return string(b), err
}

// parseRetryAfter reads a Retry-After header in either form RFC 9110
// allows: delay-seconds ("120") or an HTTP-date ("Fri, 31 Dec 1999
// 23:59:59 GMT"). Dates are converted to a delay relative to `now`
// (the response's own Date header when present, else wall clock), so
// an origin advertising an absolute retry time is honored instead of
// silently parsing to 0 and defeating the retry layer's backoff.
// Absent, malformed, negative, or already-elapsed values are 0.
func parseRetryAfter(v string, now time.Time) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	when, err := http.ParseTime(v)
	if err != nil {
		return 0
	}
	d := when.Sub(now)
	if d < 0 {
		return 0
	}
	return d
}

// responseTime anchors HTTP-date Retry-After math at the response's
// own Date header when it parses (the server's clock is the one the
// date was written against), falling back to the local wall clock.
func responseTime(h http.Header) time.Time {
	if t, err := http.ParseTime(h.Get("Date")); err == nil {
		return t
	}
	return time.Now()
}

func isRedirect(status int) bool {
	switch status {
	case http.StatusMovedPermanently, http.StatusFound, http.StatusSeeOther,
		http.StatusTemporaryRedirect, http.StatusPermanentRedirect:
		return true
	}
	return false
}

func classifyStatus(status int) Category {
	switch status {
	case http.StatusOK:
		return Cat200
	case http.StatusNotFound:
		return Cat404
	default:
		return CatOther
	}
}

// classifyError maps a transport error to a Category the way the
// paper's measurement does: DNS errors are DNS failures; deadline and
// net timeouts are Timeouts; everything else is Other.
func classifyError(err error) Category {
	var dnsErr *net.DNSError
	if errors.As(err, &dnsErr) {
		return CatDNSFailure
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return CatTimeout
	}
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return CatTimeout
	}
	// http.Client wraps errors in *url.Error; a timeout may also
	// surface as a string in exotic paths. Catch the common one.
	if strings.Contains(err.Error(), "Client.Timeout exceeded") {
		return CatTimeout
	}
	return CatOther
}
