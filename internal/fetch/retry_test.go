package fetch

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"permadead/internal/simclock"
	"permadead/internal/simweb"
)

// The annotation headers must match simweb's, or retries would silently
// re-roll nothing.
func TestSimHeadersMatchSimweb(t *testing.T) {
	if simDayHeader != simweb.DayHeader {
		t.Errorf("simDayHeader = %q, simweb.DayHeader = %q", simDayHeader, simweb.DayHeader)
	}
	if simAttemptHeader != simweb.AttemptHeader {
		t.Errorf("simAttemptHeader = %q, simweb.AttemptHeader = %q", simAttemptHeader, simweb.AttemptHeader)
	}
}

func TestTransient(t *testing.T) {
	for _, tc := range []struct {
		res  Result
		want bool
	}{
		{Result{Category: CatDNSFailure}, true},
		{Result{Category: CatTimeout}, true},
		{Result{Category: CatOther, FinalStatus: 429}, true},
		{Result{Category: CatOther, FinalStatus: 503}, true},
		{Result{Category: CatOther, FinalStatus: 500}, true},
		{Result{Category: Cat200, FinalStatus: 200}, false},
		{Result{Category: Cat404, FinalStatus: 404}, false},
		{Result{Category: CatOther, FinalStatus: 403}, false},
	} {
		if got := Transient(tc.res); got != tc.want {
			t.Errorf("Transient(%v/%d) = %v, want %v", tc.res.Category, tc.res.FinalStatus, got, tc.want)
		}
	}
}

// flakyWorld builds a world whose page is healthy but sits behind one
// fault window with the given mode/rate covering StudyTime only
// (StudyTime-5 .. StudyTime+5).
func flakyWorld(mode simweb.FaultMode, rate float64, retryAfterSec int, seed uint64) *simweb.World {
	w := simweb.NewWorld()
	created := simclock.FromDate(2008, 1, 1)
	s := w.AddSite("flaky.simtest", created)
	s.AddPage("/page.html", created)
	s.Faults = []simweb.FaultWindow{{
		From:          simclock.StudyTime.Add(-5),
		To:            simclock.StudyTime.Add(5),
		Mode:          mode,
		Rate:          rate,
		RetryAfterSec: retryAfterSec,
		Seed:          seed,
	}}
	return w
}

const flakyURL = "http://flaky.simtest/page.html"

// seedFiringOnlyOnAttempt0 finds a window seed where attempt 0 faults
// at StudyTime but attempt 1 does not, so a single retry rescues the
// link. Fault decisions are pure hashes, so probing the world is exact.
func seedFiringOnlyOnAttempt0(t *testing.T, rate float64) uint64 {
	t.Helper()
	for seed := uint64(0); seed < 10000; seed++ {
		w := flakyWorld(simweb.FaultServerBusy, rate, 0, seed)
		first := w.GetAttempt(flakyURL, simclock.StudyTime, 0)
		second := w.GetAttempt(flakyURL, simclock.StudyTime, 1)
		if first.Status == 503 && second.Status == 200 {
			return seed
		}
	}
	t.Fatal("no seed fires on attempt 0 only")
	return 0
}

func TestRetrierRescuesByRetry(t *testing.T) {
	seed := seedFiringOnlyOnAttempt0(t, 0.5)
	w := flakyWorld(simweb.FaultServerBusy, 0.5, 0, seed)
	c := New(simweb.NewTransport(w, simclock.StudyTime))

	// The bare client (one GET) sees the fault.
	if res := c.Fetch(context.Background(), flakyURL); res.FinalStatus != 503 {
		t.Fatalf("bare client: %+v", res)
	}

	r := NewRetrier(c, DefaultRetryPolicy())
	r.Day = int(simclock.StudyTime)
	r.Sleep = NopSleep
	res := r.Fetch(context.Background(), flakyURL)
	if res.Category != Cat200 {
		t.Fatalf("retrier: %+v", res)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", res.Attempts)
	}
	st := r.Stats.Snapshot()
	if st.Attempts != 2 || st.Retries != 1 || st.RescuedByRetry != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// recordingSleep captures requested backoff delays.
type recordingSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (rs *recordingSleep) sleep(ctx context.Context, d time.Duration) error {
	rs.mu.Lock()
	rs.delays = append(rs.delays, d)
	rs.mu.Unlock()
	return ctx.Err()
}

func TestRetrierBackoffExponentialWithJitter(t *testing.T) {
	// Rate 1: every attempt faults, so the retrier walks the full
	// backoff ladder. Retry-After honoring is off to expose it.
	w := flakyWorld(simweb.FaultServerBusy, 1, 0, 7)
	c := New(simweb.NewTransport(w, simclock.StudyTime))
	pol := RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Second,
		MaxBackoff:  4 * time.Second,
		JitterSeed:  42,
	}

	run := func() []time.Duration {
		r := NewRetrier(c, pol)
		r.Day = int(simclock.StudyTime)
		rs := &recordingSleep{}
		r.Sleep = rs.sleep
		res := r.Fetch(context.Background(), flakyURL)
		if res.FinalStatus != 503 || res.Attempts != 4 {
			t.Fatalf("%+v", res)
		}
		return rs.delays
	}

	delays := run()
	if len(delays) != 3 {
		t.Fatalf("delays = %v", delays)
	}
	// Half-jitter keeps each delay within [base/2, base] of the
	// exponential ladder 1s, 2s, 4s (capped).
	for i, base := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second} {
		if delays[i] < base/2 || delays[i] > base {
			t.Errorf("delay[%d] = %v, want in [%v, %v]", i, delays[i], base/2, base)
		}
	}
	// Same seed, same schedule.
	again := run()
	for i := range delays {
		if delays[i] != again[i] {
			t.Errorf("jitter not deterministic: %v vs %v", delays, again)
		}
	}
}

func TestRetrierHonorsRetryAfter(t *testing.T) {
	w := flakyWorld(simweb.FaultRateLimit, 1, 7, 3)
	c := New(simweb.NewTransport(w, simclock.StudyTime))
	pol := RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Second, RespectRetryAfter: true}
	r := NewRetrier(c, pol)
	r.Day = int(simclock.StudyTime)
	rs := &recordingSleep{}
	r.Sleep = rs.sleep

	res := r.Fetch(context.Background(), flakyURL)
	if res.FinalStatus != 429 || res.RetryAfter != 7*time.Second {
		t.Fatalf("%+v", res)
	}
	if len(rs.delays) != 1 || rs.delays[0] != 7*time.Second {
		t.Errorf("delays = %v, want [7s]", rs.delays)
	}
	if got := r.Stats.RetryAfterHonored.Load(); got != 1 {
		t.Errorf("RetryAfterHonored = %d", got)
	}
}

func TestRetrierBudgetExhaustion(t *testing.T) {
	w := flakyWorld(simweb.FaultServerBusy, 1, 0, 7)
	c := New(simweb.NewTransport(w, simclock.StudyTime))
	pol := RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Second,
		Budget:      12 * time.Second,
		JitterSeed:  1,
	}
	r := NewRetrier(c, pol)
	r.Day = int(simclock.StudyTime)
	r.Sleep = NopSleep

	res := r.Fetch(context.Background(), flakyURL)
	if res.FinalStatus != 503 {
		t.Fatalf("%+v", res)
	}
	// First delay is in [5s, 10s] (fits 12s); the doubled second delay
	// in [10s, 20s] cannot fit what remains, so the link is abandoned
	// after at most 3 of the 5 allowed attempts.
	if res.Attempts >= 5 {
		t.Errorf("attempts = %d, budget never triggered", res.Attempts)
	}
	if got := r.Stats.BudgetExhausted.Load(); got != 1 {
		t.Errorf("BudgetExhausted = %d", got)
	}
}

func TestRetrierConfirmationRecheck(t *testing.T) {
	// Rate 1 over StudyTime-5..StudyTime+5: every attempt inside the
	// window faults, but a recheck 30 sim-days later escapes it.
	w := flakyWorld(simweb.FaultServerBusy, 1, 0, 7)
	c := New(simweb.NewTransport(w, simclock.StudyTime))
	r := NewRetrier(c, ConfirmationPolicy(3, 30))
	r.Day = int(simclock.StudyTime)
	r.Sleep = NopSleep

	res := r.Fetch(context.Background(), flakyURL)
	if res.Category != Cat200 {
		t.Fatalf("%+v", res)
	}
	st := r.Stats.Snapshot()
	if st.Checks != 2 || st.Rechecks != 1 || st.RescuedByRecheck != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Check 1 burns all 3 attempts inside the window; check 2 succeeds
	// on its first fetch.
	if res.Attempts != 4 {
		t.Errorf("attempts = %d, want 4", res.Attempts)
	}

	// Without a day to advance, confirmation cannot escape the window.
	r2 := NewRetrier(c, ConfirmationPolicy(3, 30))
	r2.Sleep = NopSleep
	if res := r2.Fetch(context.Background(), flakyURL); res.FinalStatus != 503 {
		t.Errorf("dayless confirmation: %+v", res)
	}
}

func TestRetrierDefaultPolicyMatchesBareClient(t *testing.T) {
	// SingleGET with no day annotates nothing: results are identical to
	// the bare Client's, field for field (modulo the Attempts counter).
	w := testWorld()
	c := testClient(w)
	r := NewRetrier(c, SingleGET())
	for _, url := range []string{
		"http://ok.simtest/page.html",
		"http://dnsdead.simtest/x",
		"http://hang.simtest/",
		"http://redir.simtest/old.html",
	} {
		bare := c.Fetch(context.Background(), url)
		res := r.Fetch(context.Background(), url)
		if res.Attempts != 1 {
			t.Errorf("%s: attempts = %d", url, res.Attempts)
		}
		res.Attempts = bare.Attempts
		if res.Category != bare.Category || res.FinalStatus != bare.FinalStatus ||
			res.FinalURL != bare.FinalURL || res.Body != bare.Body {
			t.Errorf("%s: retrier %+v != bare %+v", url, res, bare)
		}
	}
	if h := r.annotate(NoDay, 0); h != nil {
		t.Errorf("annotate(NoDay, 0) = %v, want nil", h)
	}
}

func TestRetrierFetchAllCancellationMidRetry(t *testing.T) {
	w := flakyWorld(simweb.FaultServerBusy, 1, 0, 7)
	c := New(simweb.NewTransport(w, simclock.StudyTime))
	r := NewRetrier(c, RetryPolicy{MaxAttempts: 100, BaseBackoff: time.Millisecond})
	r.Day = int(simclock.StudyTime)

	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	r.Sleep = func(ctx context.Context, _ time.Duration) error {
		// Cancel from inside the first backoff — mid-retry, mid-fetch.
		once.Do(cancel)
		return ctx.Err()
	}

	urls := make([]string, 8)
	for i := range urls {
		urls[i] = flakyURL
	}
	done := make(chan []Result, 1)
	go func() { done <- r.FetchAll(ctx, urls, 2) }()
	select {
	case results := <-done:
		if len(results) != len(urls) {
			t.Fatalf("results = %d", len(results))
		}
		var dispatched int
		for i, res := range results {
			if res.URL != urls[i] {
				t.Errorf("result[%d] misaligned: %q", i, res.URL)
			}
			if res.Attempts > 0 {
				dispatched++
				// A dispatched link stopped retrying early.
				if res.Attempts >= 100 {
					t.Errorf("result[%d] ran all attempts after cancel", i)
				}
			} else if res.Err == nil {
				t.Errorf("result[%d] undispatched but no error", i)
			}
		}
		if dispatched == 0 {
			t.Error("nothing was dispatched before cancel")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("FetchAll did not return after cancellation")
	}
}

// errBody errors partway through the body read.
type errBody struct {
	data io.Reader
	err  error
}

func (b *errBody) Read(p []byte) (int, error) {
	n, err := b.data.Read(p)
	if err == io.EOF {
		return n, b.err
	}
	return n, err
}
func (b *errBody) Close() error { return nil }

// errBodyTransport answers every request 200 with a body that dies
// mid-read.
type errBodyTransport struct{ err error }

func (t *errBodyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		Status:     "200 OK",
		StatusCode: 200,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1, ProtoMinor: 1,
		Header:  http.Header{"Content-Type": []string{"text/html"}},
		Body:    &errBody{data: strings.NewReader("<html>partial"), err: t.err},
		Request: req,
	}, nil
}

func TestBodyReadErrorPropagates(t *testing.T) {
	// A transport error mid-body must not classify as a clean 200.
	wantErr := errors.New("connection reset by peer")
	c := New(&errBodyTransport{err: wantErr})
	res := c.Fetch(context.Background(), "http://reset.simtest/")
	if res.Err == nil || !errors.Is(res.Err, wantErr) {
		t.Fatalf("err = %v", res.Err)
	}
	if res.Category != CatOther {
		t.Errorf("category = %v, want Other", res.Category)
	}
	if res.Body != "<html>partial" {
		t.Errorf("body = %q", res.Body)
	}

	// A deadline mid-body is a Timeout, the paper's category for it.
	c = New(&errBodyTransport{err: context.DeadlineExceeded})
	res = c.Fetch(context.Background(), "http://reset.simtest/")
	if res.Category != CatTimeout {
		t.Errorf("deadline category = %v, want Timeout", res.Category)
	}
}
