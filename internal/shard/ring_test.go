package shard

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

func testDomains(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("site-%04d.example", i)
	}
	return out
}

func TestRingDeterministicAcrossBuilds(t *testing.T) {
	members := []string{"s1", "s2", "s3", "s4"}
	a, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same members in a different order must place identically: the
	// ring depends only on member names.
	b, err := New([]string{"s3", "s1", "s4", "s2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range testDomains(500) {
		if a.Owner(d) != b.Owner(d) {
			t.Fatalf("owner of %q differs across member orderings: %q vs %q", d, a.Owner(d), b.Owner(d))
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := New([]string{"s1", "s2", "s3", "s4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	domains := testDomains(4000)
	counts := r.OwnedCount(domains)
	if len(counts) != 4 {
		t.Fatalf("OwnedCount members = %d, want 4", len(counts))
	}
	for m, c := range counts {
		// Perfect balance is 1000 per member; consistent hashing with 64
		// vnodes should land well within 2x either way.
		if c < 500 || c > 2000 {
			t.Errorf("member %s owns %d of 4000 domains; ring badly imbalanced", m, c)
		}
	}
}

func TestRingOwnerNormalizesKeys(t *testing.T) {
	r, err := New([]string{"s1", "s2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Owner("Example.COM") != r.Owner("example.com") {
		t.Error("Owner is case-sensitive; keys must normalize")
	}
	if r.Owner(" example.com ") != r.Owner("example.com") {
		t.Error("Owner does not trim whitespace")
	}
	// The empty key (unparseable URL) still routes somewhere.
	if r.Owner("") == "" {
		t.Error("empty domain has no owner")
	}
}

func TestRingOwnerOfURL(t *testing.T) {
	r, err := New([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hosts under one registrable domain land on one shard — the
	// domain-affinity invariant multi-URL computations rely on.
	a := r.OwnerOfURL("http://www.news.example.co.uk/a/b")
	b := r.OwnerOfURL("https://archive.news.example.co.uk/other")
	if a != b {
		t.Errorf("same registrable domain split across shards: %q vs %q", a, b)
	}
}

func TestMoveDomain(t *testing.T) {
	r, err := New([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	domain := "moveme.example"
	from := r.Owner(domain)
	var to string
	for _, m := range r.Members() {
		if m != from {
			to = m
			break
		}
	}

	nr, prev, point, err := r.MoveDomain(domain, to)
	if err != nil {
		t.Fatal(err)
	}
	if prev != from {
		t.Errorf("MoveDomain prior owner = %q, want %q", prev, from)
	}
	if point != r.PointOf(domain) {
		t.Errorf("MoveDomain point = %d, want %d", point, r.PointOf(domain))
	}
	if nr.Owner(domain) != to {
		t.Errorf("after move, owner = %q, want %q", nr.Owner(domain), to)
	}
	if nr.Generation() != r.Generation()+1 {
		t.Errorf("generation = %d, want %d", nr.Generation(), r.Generation()+1)
	}
	if r.Owner(domain) != from {
		t.Error("MoveDomain mutated the receiver; rings must be immutable")
	}

	// No-op move: same owner, same ring, same generation.
	same, prev2, _, err := nr.MoveDomain(domain, to)
	if err != nil {
		t.Fatal(err)
	}
	if same != nr || prev2 != to {
		t.Error("moving a domain to its current owner should return the receiver unchanged")
	}

	// Latest-wins collapse: moving the same point again replaces the
	// move rather than stacking a second one.
	back, _, _, err := nr.MoveDomain(domain, from)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(back.State().Moves); got != 1 {
		t.Errorf("after re-moving the same point, moves = %d, want 1 (latest wins)", got)
	}
	if back.Owner(domain) != from {
		t.Errorf("after moving back, owner = %q, want %q", back.Owner(domain), from)
	}

	if _, _, _, err := r.MoveDomain(domain, "nope"); err == nil {
		t.Error("MoveDomain to unknown member should error")
	}
}

func TestFromStateValidation(t *testing.T) {
	cases := []struct {
		name string
		st   RingState
	}{
		{"no members", RingState{VNodes: 8}},
		{"empty member", RingState{VNodes: 8, Members: []string{"a", ""}}},
		{"duplicate member", RingState{VNodes: 8, Members: []string{"a", "a"}}},
		{"move to unknown member", RingState{VNodes: 8, Members: []string{"a"}, Moves: []Move{{Point: 1, To: "b"}}}},
		{"move of unknown point", RingState{VNodes: 8, Members: []string{"a", "b"}, Moves: []Move{{Point: 12345, To: "b"}}}},
	}
	for _, tc := range cases {
		if _, err := FromState(tc.st); err == nil {
			t.Errorf("%s: FromState accepted an invalid state", tc.name)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	r, err := New([]string{"s1", "s2"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	moved, _, _, err := r.MoveDomain("roundtrip.example", pickOther(r, "roundtrip.example"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(moved.State())
	if err != nil {
		t.Fatal(err)
	}
	var st RingState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rebuilt.State(), moved.State()) {
		t.Error("state does not survive a JSON round trip")
	}
	for _, d := range append(testDomains(200), "roundtrip.example") {
		if rebuilt.Owner(d) != moved.Owner(d) {
			t.Fatalf("rebuilt ring resolves %q to %q, original to %q", d, rebuilt.Owner(d), moved.Owner(d))
		}
	}
	// Mutating the returned state must not touch the ring.
	st2 := moved.State()
	st2.Members[0] = "hacked"
	if moved.Members()[0] == "hacked" {
		t.Error("State returned a shallow copy")
	}
}

func pickOther(r *Ring, domain string) string {
	cur := r.Owner(domain)
	for _, m := range r.Members() {
		if m != cur {
			return m
		}
	}
	return cur
}
