package shard_test

// Differential test for the sharded fleet: a router in front of N
// shard servers must answer /v1/classify byte-identically to one
// standalone permadeadd over the same universe — including after a
// rebalance, and (for the links it still covers) with one shard
// killed. The simulated web's fault windows are pure hash functions of
// (seed, day, attempt), so identical universes produce identical
// verdict bytes; any divergence is a routing or merge bug.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"permadead/internal/persist"
	"permadead/internal/service"
	"permadead/internal/shard"
	"permadead/internal/urlutil"
	"permadead/internal/worldgen"
)

var (
	fleetOnce   sync.Once
	fleetBundle *persist.Bundle
)

func fleetFixture(t *testing.T) *persist.Bundle {
	t.Helper()
	fleetOnce.Do(func() {
		fleetBundle = persist.FromUniverse(worldgen.Generate(worldgen.SmallParams()))
	})
	return fleetBundle
}

func newServer(t *testing.T, b *persist.Bundle, mut func(*service.Config)) *service.Server {
	t.Helper()
	cfg := service.DefaultConfig()
	cfg.Study.SampleSize = b.Params.SampleSize
	cfg.Study.CrawlArticles = 0
	cfg.DisableMonitor = true
	if mut != nil {
		mut(&cfg)
	}
	s, err := service.New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(shutdownCtx(t)) }) //nolint:errcheck
	return s
}

func shutdownCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// fleet spins up n shard servers over one bundle plus a router, and
// returns the router, its handler, and each shard's httptest server in
// member order.
func newFleet(t *testing.T, b *persist.Bundle, n int) (*shard.Router, http.Handler, []*httptest.Server) {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i+1)
	}
	members := make([]shard.Member, n)
	backends := make([]*httptest.Server, n)
	for i, name := range names {
		name := name
		srv := newServer(t, b, func(c *service.Config) {
			c.ShardName = name
			c.ShardMembers = names
		})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		backends[i] = ts
		members[i] = shard.Member{Name: name, Base: ts.URL}
	}
	r, err := shard.NewRouter(shard.RouterConfig{
		Members:        members,
		ShardTimeout:   30 * time.Second,
		HealthInterval: time.Hour, // health transitions driven by proxy errors in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, r.Handler(), backends
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func post(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func sampleURLs(t *testing.T, h http.Handler, n int) []string {
	t.Helper()
	w := get(t, h, fmt.Sprintf("/v1/sample?n=%d", n))
	if w.Code != http.StatusOK {
		t.Fatalf("sample: %d: %s", w.Code, w.Body)
	}
	var sr struct {
		URLs []string `json:"urls"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.URLs) == 0 {
		t.Fatal("empty sample")
	}
	return sr.URLs
}

// TestFleetClassifyByteIdentical is the core differential: every
// sampled URL classified through the router must produce the same
// bytes a standalone server produces, on both the single and batch
// endpoints.
func TestFleetClassifyByteIdentical(t *testing.T) {
	b := fleetFixture(t)
	solo := newServer(t, b, nil).Handler()
	router, fleet, _ := newFleet(t, b, 3)

	urls := sampleURLs(t, solo, 60)

	// Single endpoint, URL by URL.
	shardsSeen := map[string]bool{}
	for _, u := range urls {
		want := get(t, solo, "/v1/classify?url="+url.QueryEscape(u))
		got := get(t, fleet, "/v1/classify?url="+url.QueryEscape(u))
		if got.Code != want.Code {
			t.Fatalf("classify %s: fleet status %d, standalone %d", u, got.Code, want.Code)
		}
		if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
			t.Fatalf("classify %s: fleet body differs from standalone\nfleet: %s\nsolo:  %s", u, got.Body, want.Body)
		}
		name := got.Header().Get("X-Fleet-Shard")
		if name == "" {
			t.Fatalf("classify %s: router did not stamp X-Fleet-Shard", u)
		}
		shardsSeen[name] = true
		if want := router.Ring().OwnerOfURL(u); name != want {
			t.Fatalf("classify %s served by %s, ring owner is %s", u, name, want)
		}
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("all %d sampled URLs routed to %v; sample too narrow to exercise the fleet", len(urls), shardsSeen)
	}

	// Batch endpoint: whole-body comparison, which also proves the
	// router's split/merge preserved input order exactly.
	want := post(t, solo, "/v1/classify/batch", map[string][]string{"urls": urls})
	got := post(t, fleet, "/v1/classify/batch", map[string][]string{"urls": urls})
	if got.Code != http.StatusOK || want.Code != http.StatusOK {
		t.Fatalf("batch status: fleet %d, standalone %d", got.Code, want.Code)
	}
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		gl := strings.Split(got.Body.String(), "\n")
		wl := strings.Split(want.Body.String(), "\n")
		for i := range gl {
			if i >= len(wl) || gl[i] != wl[i] {
				t.Fatalf("batch line %d differs\nfleet: %s\nsolo:  %s", i, gl[i], wl[i])
			}
		}
		t.Fatal("batch bodies differ in length")
	}
	if got.Header().Get("X-Fleet-Partial") != "" {
		t.Error("healthy fleet flagged a batch partial")
	}
}

// TestFleetScatterSample checks the scattered population view: the
// fleet's merged sample must cover exactly the standalone population,
// each URL contributed by its ring owner.
func TestFleetScatterSample(t *testing.T) {
	b := fleetFixture(t)
	solo := newServer(t, b, nil).Handler()
	_, fleet, _ := newFleet(t, b, 3)

	var whole struct {
		Total int      `json:"total"`
		URLs  []string `json:"urls"`
	}
	w := get(t, solo, "/v1/sample?n=100000")
	if err := json.Unmarshal(w.Body.Bytes(), &whole); err != nil {
		t.Fatal(err)
	}

	var merged struct {
		Total   int            `json:"total"`
		Count   int            `json:"count"`
		URLs    []string       `json:"urls"`
		ByShard map[string]int `json:"by_shard"`
		Partial bool           `json:"partial"`
	}
	w = get(t, fleet, "/v1/sample?n=100000")
	if w.Code != http.StatusOK {
		t.Fatalf("fleet sample: %d: %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Partial {
		t.Fatal("healthy fleet returned a partial sample")
	}
	if merged.Total != whole.Total {
		t.Fatalf("fleet total = %d, standalone = %d", merged.Total, whole.Total)
	}
	if len(merged.URLs) != len(whole.URLs) {
		t.Fatalf("fleet sample carries %d URLs, standalone %d", len(merged.URLs), len(whole.URLs))
	}
	set := make(map[string]bool, len(whole.URLs))
	for _, u := range whole.URLs {
		set[u] = true
	}
	for _, u := range merged.URLs {
		if !set[u] {
			t.Fatalf("fleet sample carries %q, absent from the standalone population", u)
		}
	}
	contributed := 0
	for _, c := range merged.ByShard {
		contributed += c
	}
	if contributed != whole.Total {
		t.Fatalf("by_shard sums to %d, want %d", contributed, whole.Total)
	}
}

// TestFleetKilledShard degrades one shard and checks every degraded
// contract: flagged partials with Retry-After, per-line shard errors in
// batches, 503 (never a hang) on single requests — while the surviving
// shards' answers stay byte-identical to the standalone's.
func TestFleetKilledShard(t *testing.T) {
	b := fleetFixture(t)
	solo := newServer(t, b, nil).Handler()
	router, fleet, backends := newFleet(t, b, 3)

	urls := sampleURLs(t, solo, 60)
	ring := router.Ring()
	victim := ring.OwnerOfURL(urls[0])
	var victimIdx int
	for i, name := range ring.Members() {
		if name == victim {
			victimIdx = i
		}
	}
	backends[victimIdx].Close()

	// First hit on the dead shard takes the transport-error path: 503,
	// Retry-After, and the member marked down.
	w := get(t, fleet, "/v1/classify?url="+url.QueryEscape(urls[0]))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("classify via dead shard: status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("degraded classify carries no Retry-After")
	}
	if !strings.Contains(w.Body.String(), "shard_unreachable") && !strings.Contains(w.Body.String(), "shard_down") {
		t.Errorf("degraded classify error = %s, want shard_unreachable/shard_down", w.Body)
	}

	// Known-down now: the short-circuit path answers without dialing.
	w = get(t, fleet, "/v1/classify?url="+url.QueryEscape(urls[0]))
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "shard_down") {
		t.Fatalf("known-down classify: status %d body %s, want 503 shard_down", w.Code, w.Body)
	}

	// Batch across the whole sample: flagged partial, dead shard's
	// lines are per-line errors, surviving lines byte-identical.
	want := post(t, solo, "/v1/classify/batch", map[string][]string{"urls": urls})
	got := post(t, fleet, "/v1/classify/batch", map[string][]string{"urls": urls})
	if got.Code != http.StatusOK {
		t.Fatalf("degraded batch: status %d", got.Code)
	}
	if p := got.Header().Get("X-Fleet-Partial"); !strings.Contains(p, victim) {
		t.Errorf("X-Fleet-Partial = %q, want it to name %s", p, victim)
	}
	if got.Header().Get("Retry-After") == "" {
		t.Error("degraded batch carries no Retry-After")
	}
	wantLines := splitLines(t, want.Body.Bytes())
	gotLines := splitLines(t, got.Body.Bytes())
	if len(gotLines) != len(urls) || len(wantLines) != len(urls) {
		t.Fatalf("line counts: fleet %d, solo %d, want %d", len(gotLines), len(wantLines), len(urls))
	}
	deadLines, liveLines := 0, 0
	for i, u := range urls {
		if ring.OwnerOfURL(u) == victim {
			deadLines++
			if !strings.Contains(gotLines[i], "shard_down") {
				t.Errorf("line %d (%s): owned by dead shard, got %s", i, u, gotLines[i])
			}
			continue
		}
		liveLines++
		if gotLines[i] != wantLines[i] {
			t.Errorf("line %d (%s): healthy-shard line diverged\nfleet: %s\nsolo:  %s", i, u, gotLines[i], wantLines[i])
		}
	}
	if deadLines == 0 || liveLines == 0 {
		t.Fatalf("degenerate split: %d dead lines, %d live lines", deadLines, liveLines)
	}

	// Scatter sample: partial, missing shard named, Retry-After set.
	w = get(t, fleet, "/v1/sample?n=100000")
	var merged struct {
		Partial       bool     `json:"partial"`
		MissingShards []string `json:"missing_shards"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &merged); err != nil {
		t.Fatal(err)
	}
	if !merged.Partial || len(merged.MissingShards) != 1 || merged.MissingShards[0] != victim {
		t.Errorf("degraded sample: partial=%v missing=%v, want partial naming %s", merged.Partial, merged.MissingShards, victim)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("degraded sample carries no Retry-After")
	}

	// Healthy-shard traffic still flows with zero 5xx.
	for _, u := range urls {
		if ring.OwnerOfURL(u) == victim {
			continue
		}
		if w := get(t, fleet, "/v1/classify?url="+url.QueryEscape(u)); w.Code != http.StatusOK {
			t.Fatalf("healthy-shard classify %s: status %d", u, w.Code)
		}
	}
}

// TestFleetRebalance moves one domain's hash range to another member
// and checks the full handoff: generation bump, router cutover, shard
// owned views converging, verdicts still byte-identical.
func TestFleetRebalance(t *testing.T) {
	b := fleetFixture(t)
	solo := newServer(t, b, nil).Handler()
	router, fleet, backends := newFleet(t, b, 3)

	urls := sampleURLs(t, solo, 20)
	target := urls[0]
	domain := urlutil.Domain(target)
	from := router.Ring().Owner(domain)
	var to string
	for _, m := range router.Ring().Members() {
		if m != from {
			to = m
			break
		}
	}

	w := post(t, fleet, "/admin/rebalance", map[string]string{"domain": domain, "to": to})
	if w.Code != http.StatusOK {
		t.Fatalf("rebalance: %d: %s", w.Code, w.Body)
	}
	var res shard.RebalanceResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.From != from || res.To != to || !res.Drained {
		t.Fatalf("rebalance result %+v, want from=%s to=%s drained", res, from, to)
	}
	if router.Ring().Owner(domain) != to {
		t.Fatalf("router still routes %s to %s", domain, router.Ring().Owner(domain))
	}

	// The moved domain now serves from the new owner, byte-identically.
	want := get(t, solo, "/v1/classify?url="+url.QueryEscape(target))
	got := get(t, fleet, "/v1/classify?url="+url.QueryEscape(target))
	if got.Header().Get("X-Fleet-Shard") != to {
		t.Errorf("post-rebalance classify served by %q, want %q", got.Header().Get("X-Fleet-Shard"), to)
	}
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Errorf("post-rebalance classify diverged\nfleet: %s\nsolo:  %s", got.Body, want.Body)
	}

	// Every shard's owned sample view reflects the pushed ring: exactly
	// one owner lists the moved URL, and it is the new one.
	owners := []string{}
	for i, name := range router.Ring().Members() {
		resp, err := http.Get(backends[i].URL + "/v1/sample?view=owned&n=100000")
		if err != nil {
			t.Fatal(err)
		}
		var sr struct {
			URLs []string `json:"urls"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, u := range sr.URLs {
			if u == target {
				owners = append(owners, name)
			}
		}
	}
	if len(owners) != 1 || owners[0] != to {
		t.Errorf("owned views list %s under %v, want exactly [%s]", target, owners, to)
	}

	// Generation visible on the shard admin plane.
	resp, err := http.Get(backends[0].URL + "/v1/shard/info")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Generation int64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Generation != res.Generation {
		t.Errorf("shard generation = %d, want %d", info.Generation, res.Generation)
	}

	// Moving the range back restores the original owner (latest-wins).
	w = post(t, fleet, "/admin/rebalance", map[string]string{"domain": domain, "to": from})
	if w.Code != http.StatusOK {
		t.Fatalf("rebalance back: %d: %s", w.Code, w.Body)
	}
	if router.Ring().Owner(domain) != from {
		t.Error("moving the range back did not restore the original owner")
	}
}

func splitLines(t *testing.T, body []byte) []string {
	t.Helper()
	var out []string
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
