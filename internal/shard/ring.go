// Package shard partitions the served link universe across a fleet of
// permadeadd processes and routes requests to the owner of each link.
//
// The partition key is the registrable domain (urlutil.Domain): the
// paper's population — millions of links across ~500k sites — shards
// naturally by site, and every serving-path computation that touches
// more than one URL (the §4.2 sibling check, the §5.2 spatial probes,
// the typo scan) stays within one registrable domain by construction.
// Domain-affine placement therefore keeps every single-link verdict a
// single-shard operation; only population-level queries (/v1/sample)
// must scatter.
//
// Ownership is a consistent-hash ring (Ring) over the fleet's member
// names with a fixed number of virtual nodes per member. Both the
// router and every shard build the identical ring from the same member
// list, so "who owns domain d" needs no coordination service; runtime
// rebalances travel as an explicit move list stamped with a generation
// counter (RingState), pushed to shards over their admin endpoint.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"permadead/internal/urlutil"
)

// DefaultVNodes is the per-member virtual-node count. 64 vnodes keep
// the expected per-member load imbalance under a few percent for small
// fleets while keeping the ring tiny (N*64 points).
const DefaultVNodes = 64

// Move reassigns one vnode's hash range — (predecessor point, Point] —
// to a different member. Moves are the unit of rebalancing: they ride
// in RingState on top of the base member/vnode assignment, so a ring
// rebuilt anywhere from the same state resolves ownership identically.
type Move struct {
	// Point is the vnode hash whose range moves.
	Point uint64 `json:"point"`
	// To is the member receiving the range.
	To string `json:"to"`
}

// RingState is the wire form of a Ring: everything needed to rebuild
// it byte-for-byte on another process. The router pushes RingState to
// shards' /v1/shard/ownership endpoint; Generation orders updates (a
// shard rejects a state older than what it already holds).
type RingState struct {
	Generation int64    `json:"generation"`
	VNodes     int      `json:"vnodes"`
	Members    []string `json:"members"`
	Moves      []Move   `json:"moves,omitempty"`
}

// point is one position on the ring.
type point struct {
	h     uint64
	owner string
}

// Ring maps registrable domains to member names by consistent
// hashing. A Ring is immutable — rebalancing returns a new Ring — so
// readers hold it through an atomic pointer and never lock.
type Ring struct {
	state  RingState
	points []point // sorted by hash
}

// New builds the base ring over members (order-insensitive: placement
// depends only on each member's name). vnodes <= 0 selects
// DefaultVNodes.
func New(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return FromState(RingState{VNodes: vnodes, Members: members})
}

// FromState rebuilds a ring from its wire form, validating it: at
// least one member, no duplicates, every move targeting a known member
// and an existing vnode point.
func FromState(st RingState) (*Ring, error) {
	if len(st.Members) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one member")
	}
	if st.VNodes <= 0 {
		st.VNodes = DefaultVNodes
	}
	known := make(map[string]bool, len(st.Members))
	for _, m := range st.Members {
		if m == "" {
			return nil, fmt.Errorf("shard: empty member name")
		}
		if known[m] {
			return nil, fmt.Errorf("shard: duplicate member %q", m)
		}
		known[m] = true
	}
	r := &Ring{state: cloneState(st)}
	r.points = make([]point, 0, len(st.Members)*st.VNodes)
	for _, m := range st.Members {
		for i := 0; i < st.VNodes; i++ {
			r.points = append(r.points, point{h: hash64(m + "#" + strconv.Itoa(i)), owner: m})
		}
	}
	// Ties (vanishingly rare with 64-bit FNV) break by owner name so
	// every rebuild resolves identically.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].owner < r.points[j].owner
	})
	for _, mv := range st.Moves {
		if !known[mv.To] {
			return nil, fmt.Errorf("shard: move targets unknown member %q", mv.To)
		}
		i := r.pointIndex(mv.Point)
		if i < 0 {
			return nil, fmt.Errorf("shard: move references unknown ring point %d", mv.Point)
		}
		r.points[i].owner = mv.To
	}
	return r, nil
}

// pointIndex finds the exact vnode with hash h, or -1.
func (r *Ring) pointIndex(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i < len(r.points) && r.points[i].h == h {
		return i
	}
	return -1
}

// State returns a deep copy of the ring's wire form.
func (r *Ring) State() RingState { return cloneState(r.state) }

// Generation returns the ring's update counter.
func (r *Ring) Generation() int64 { return r.state.Generation }

// Members returns the member list in state order.
func (r *Ring) Members() []string { return append([]string(nil), r.state.Members...) }

// Owner returns the member owning a registrable domain. The empty
// domain (unparseable URL) maps like any other key, so even junk input
// routes deterministically.
func (r *Ring) Owner(domain string) string {
	_, p := r.locate(domain)
	return p.owner
}

// OwnerOfURL is Owner over the URL's registrable domain.
func (r *Ring) OwnerOfURL(rawURL string) string {
	return r.Owner(urlutil.Domain(rawURL))
}

// PointOf returns the vnode hash whose range covers the domain — the
// identity of the range a Move would transfer, and the key routers use
// to track per-range in-flight work during a handoff.
func (r *Ring) PointOf(domain string) uint64 {
	_, p := r.locate(domain)
	return p.h
}

// locate finds the successor vnode for a domain key.
func (r *Ring) locate(domain string) (int, point) {
	h := hash64(strings.ToLower(strings.TrimSpace(domain)))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0 // wrap: the smallest point owns the top of the hash space
	}
	return i, r.points[i]
}

// MoveDomain returns a new ring (generation+1) with the vnode range
// covering domain reassigned to member to, along with the prior owner
// and the moved point. Moving a range to its current owner returns the
// receiver unchanged (same generation) with from == to.
func (r *Ring) MoveDomain(domain, to string) (*Ring, string, uint64, error) {
	i, p := r.locate(domain)
	if p.owner == to {
		return r, p.owner, p.h, nil
	}
	valid := false
	for _, m := range r.state.Members {
		if m == to {
			valid = true
			break
		}
	}
	if !valid {
		return nil, "", 0, fmt.Errorf("shard: move targets unknown member %q", to)
	}
	st := cloneState(r.state)
	st.Generation++
	// Collapse repeated moves of the same point: the latest wins.
	replaced := false
	for k := range st.Moves {
		if st.Moves[k].Point == p.h {
			st.Moves[k].To = to
			replaced = true
			break
		}
	}
	if !replaced {
		st.Moves = append(st.Moves, Move{Point: p.h, To: to})
	}
	nr, err := FromState(st)
	if err != nil {
		return nil, "", 0, err
	}
	return nr, r.points[i].owner, p.h, nil
}

// OwnedCount tallies how many of the given domains each member owns —
// the balance report worldgen -shards prints.
func (r *Ring) OwnedCount(domains []string) map[string]int {
	out := make(map[string]int, len(r.state.Members))
	for _, m := range r.state.Members {
		out[m] = 0
	}
	for _, d := range domains {
		out[r.Owner(d)]++
	}
	return out
}

func cloneState(st RingState) RingState {
	st.Members = append([]string(nil), st.Members...)
	st.Moves = append([]Move(nil), st.Moves...)
	return st
}

// hash64 is FNV-1a over the key, pushed through a 64-bit finalizer.
// FNV alone clusters badly on short, similar keys (vnode labels differ
// in a few trailing digits), which skews successor-range sizes; the
// finalizer restores avalanche while keeping the function seedless and
// table-free, so every process in the fleet agrees with no
// coordination.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never errors
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
