package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"permadead/internal/core"
	"permadead/internal/urlutil"
)

// Member names one shard and where to reach it.
type Member struct {
	Name string
	Base string // e.g. http://127.0.0.1:9001
}

// RouterConfig tunes the fleet router. Zero values select defaults.
type RouterConfig struct {
	// Members is the fleet, in ring order. Names must match the
	// -shard-name each permadeadd was started with.
	Members []Member
	// VNodes is the ring's per-member virtual-node count.
	VNodes int
	// ShardTimeout is the per-shard deadline on every proxied or
	// scattered leg — the bound that turns a hung shard into a flagged
	// partial result instead of a hung client.
	ShardTimeout time.Duration
	// HealthInterval is the /healthz polling cadence. Proxy failures
	// mark a member down immediately; polling brings it back.
	HealthInterval time.Duration
	// RetryAfterSec is the Retry-After advertisement on degraded
	// (shard-down) responses.
	RetryAfterSec int
	// MaxBatchLinks mirrors the shard-side bound on one batch request.
	MaxBatchLinks int
	// DrainTimeout bounds how long a rebalance waits for the old
	// owner's in-flight requests on the moved range to finish.
	DrainTimeout time.Duration
}

func (c *RouterConfig) fillDefaults() {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 15 * time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.RetryAfterSec <= 0 {
		c.RetryAfterSec = 2
	}
	if c.MaxBatchLinks <= 0 {
		c.MaxBatchLinks = 10000
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
}

// member is the router's live view of one shard.
type member struct {
	name    string
	base    string
	healthy atomic.Bool
	// proxied / failed count forwarded requests and transport-level
	// failures (for /metrics).
	proxied atomic.Int64
	failed  atomic.Int64
	// inflight tracks requests currently forwarded to this member,
	// bucketed by the ring point that routed them — the unit a
	// rebalance drains before declaring the handoff complete.
	inflight sync.Map // uint64 (ring point) -> *atomic.Int64
}

func (m *member) track(point uint64) func() {
	v, _ := m.inflight.LoadOrStore(point, new(atomic.Int64))
	ctr := v.(*atomic.Int64)
	ctr.Add(1)
	return func() { ctr.Add(-1) }
}

func (m *member) inflightOn(point uint64) int64 {
	v, ok := m.inflight.Load(point)
	if !ok {
		return 0
	}
	return v.(*atomic.Int64).Load()
}

// Router is a stateless fan-out proxy in front of a permadeadd fleet.
// It owns the authoritative ring, proxies single-link verdicts to the
// owning shard, scatter-gathers population queries, splits batch
// requests by owner, and orchestrates rebalances. It holds no link
// state of its own: killing and restarting the router loses nothing.
type Router struct {
	cfg     RouterConfig
	ring    atomic.Pointer[Ring]
	members map[string]*member
	order   []string
	client  *http.Client

	rebalanceMu sync.Mutex // serializes handoffs
	stop        chan struct{}
	stopOnce    sync.Once

	degraded atomic.Int64 // responses flagged partial or shard_down
}

// NewRouter builds a router over the fleet. Members start healthy;
// the first health sweep (and any proxy failure) corrects that.
// Call Close to stop the health loop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg.fillDefaults()
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one member")
	}
	names := make([]string, len(cfg.Members))
	for i, m := range cfg.Members {
		names[i] = m.Name
	}
	ring, err := New(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:     cfg,
		members: make(map[string]*member, len(cfg.Members)),
		order:   names,
		client:  &http.Client{}, // per-leg deadlines ride on contexts
		stop:    make(chan struct{}),
	}
	r.ring.Store(ring)
	for _, m := range cfg.Members {
		base := m.Base
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		mem := &member{name: m.Name, base: strings.TrimSuffix(base, "/")}
		mem.healthy.Store(true)
		r.members[m.Name] = mem
	}
	go r.healthLoop()
	return r, nil
}

// Close stops the health loop.
func (r *Router) Close() { r.stopOnce.Do(func() { close(r.stop) }) }

// Ring returns the current ring.
func (r *Router) Ring() *Ring { return r.ring.Load() }

func (r *Router) healthLoop() {
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			for _, m := range r.members {
				m.healthy.Store(r.probe(m))
			}
		}
	}
}

// probe asks one shard's /healthz; only a 200 counts (a draining shard
// answers 503 and must stop receiving traffic).
func (r *Router) probe(m *member) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Handler returns the router's route tree. The surface mirrors the
// shard API where proxying is transparent; fleet-only routes live
// under /admin.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	single := http.HandlerFunc(r.handleSingle)
	mux.Handle("/v1/availability", single)
	mux.Handle("/v1/status", single)
	mux.Handle("/v1/classify", single)
	mux.HandleFunc("/v1/classify/batch", r.handleBatch)
	mux.HandleFunc("/v1/sample", r.handleSample)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/admin/ring", r.handleRing)
	mux.HandleFunc("/admin/rebalance", r.handleRebalance)
	return mux
}

// writeError mirrors the shard-side error envelope so fleet clients
// parse one shape everywhere.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
		"error": map[string]string{"code": code, "message": fmt.Sprintf(format, args...)},
	})
}

func (r *Router) degrade(w http.ResponseWriter, status int, code, format string, args ...any) {
	r.degraded.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(r.cfg.RetryAfterSec))
	writeError(w, status, code, format, args...)
}

// route resolves a raw URL to its owning member and the ring point
// that made the decision.
func (r *Router) route(rawURL string) (*member, uint64) {
	ring := r.ring.Load()
	domain := urlutil.Domain(rawURL)
	return r.members[ring.Owner(domain)], ring.PointOf(domain)
}

// handleSingle proxies /v1/availability, /v1/status, and /v1/classify
// to the shard owning the queried URL's registrable domain. The shard's
// response — status, body, cache headers — passes through verbatim, so
// a fleet answer is byte-identical to the owning shard's; the router
// adds only X-Fleet-Shard. A down or unreachable owner answers 503
// with Retry-After instead of hanging.
func (r *Router) handleSingle(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	rawURL := req.URL.Query().Get("url")
	if rawURL == "" {
		writeError(w, http.StatusBadRequest, "missing_url", "missing url parameter")
		return
	}
	m, point := r.route(rawURL)
	if !m.healthy.Load() {
		r.degrade(w, http.StatusServiceUnavailable, "shard_down",
			"shard %s (owner of %s) is down; retry shortly", m.name, urlutil.Domain(rawURL))
		return
	}
	done := m.track(point)
	defer done()

	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.ShardTimeout)
	defer cancel()
	out, err := http.NewRequestWithContext(ctx, http.MethodGet, m.base+req.URL.Path+"?"+req.URL.RawQuery, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	resp, err := r.client.Do(out)
	if err != nil {
		m.healthy.Store(false)
		m.failed.Add(1)
		r.degrade(w, http.StatusServiceUnavailable, "shard_unreachable",
			"shard %s did not answer within %v: %v", m.name, r.cfg.ShardTimeout, err)
		return
	}
	defer resp.Body.Close()
	m.proxied.Add(1)
	for _, h := range []string{"Content-Type", "X-Cache", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Fleet-Shard", m.name)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // headers are out; the stream just ends
}

// batchLine pairs a global input index with its rendered NDJSON line.
type errLine struct {
	URL   string `json:"url"`
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func renderErrLine(url, code, msg string) []byte {
	var l errLine
	l.URL = url
	l.Error.Code, l.Error.Message = code, msg
	b, _ := json.Marshal(l) //nolint:errcheck // struct of strings cannot fail
	return append(b, '\n')
}

// handleBatch splits one bulk-classify request by owning shard, posts
// each shard its sub-batch concurrently, and re-merges the streamed
// NDJSON lines into global input order via core.StreamOrdered — line i
// flushes as soon as it and its predecessors are ready, no matter
// which shard computed it. Links owned by a down shard become
// {"error":{"code":"shard_down"}} lines (the same per-line degradation
// contract as unknown links), the response is flagged with
// X-Fleet-Partial and Retry-After, and a shard that dies mid-stream
// fails only its own remaining lines.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	var body struct {
		URLs []string `json:"urls"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 32<<20)).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad_body", "decoding request body: %v", err)
		return
	}
	if len(body.URLs) == 0 {
		writeError(w, http.StatusBadRequest, "empty_batch", `body must carry a non-empty "urls" array`)
		return
	}
	if len(body.URLs) > r.cfg.MaxBatchLinks {
		writeError(w, http.StatusRequestEntityTooLarge, "batch_too_large",
			"%d urls exceeds the %d-link batch bound; split the request", len(body.URLs), r.cfg.MaxBatchLinks)
		return
	}

	// Partition input indices by owning member under one ring snapshot
	// (a rebalance mid-request must not split a batch across rings).
	ring := r.ring.Load()
	type part struct {
		m      *member
		point  uint64 // any routed point; per-index points tracked below
		idxs   []int
		points []uint64
	}
	parts := make(map[string]*part)
	for i, u := range body.URLs {
		d := urlutil.Domain(u)
		name := ring.Owner(d)
		p := parts[name]
		if p == nil {
			p = &part{m: r.members[name]}
			parts[name] = p
		}
		p.idxs = append(p.idxs, i)
		p.points = append(p.points, ring.PointOf(d))
	}

	// slots[i] carries exactly one line for global index i; capacity 1
	// means shard readers never block on the merger.
	n := len(body.URLs)
	slots := make([]chan []byte, n)
	for i := range slots {
		slots[i] = make(chan []byte, 1)
	}

	var down []string
	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	var wg sync.WaitGroup
	for _, p := range parts {
		if !p.m.healthy.Load() {
			down = append(down, p.m.name)
			for _, i := range p.idxs {
				slots[i] <- renderErrLine(body.URLs[i], "shard_down",
					fmt.Sprintf("shard %s is down; retry shortly", p.m.name))
			}
			continue
		}
		wg.Add(1)
		go func(p *part) {
			defer wg.Done()
			r.streamSubBatch(ctx, p.m, p.points, body.URLs, p.idxs, slots)
		}(p)
	}

	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.Header().Set("X-Batch-Links", strconv.Itoa(n))
	if len(down) > 0 {
		sort.Strings(down)
		w.Header().Set("X-Fleet-Partial", strings.Join(down, ","))
		w.Header().Set("Retry-After", strconv.Itoa(r.cfg.RetryAfterSec))
		r.degraded.Add(1)
	}
	flusher, _ := w.(http.Flusher)

	// The merge: workers claim global indices and wait on that index's
	// slot; emit runs in strict input order. Width tracks the fleet —
	// one in-flight index per shard stream plus slack — because each
	// claimed index blocks until its shard delivers.
	width := 2*len(parts) + 1
	//nolint:errcheck // a mid-stream client disconnect just ends the stream
	core.StreamOrdered(ctx, n, width,
		func(i int) []byte {
			select {
			case line := <-slots[i]:
				return line
			case <-ctx.Done():
				return renderErrLine(body.URLs[i], "client_closed_request", "request canceled")
			}
		},
		func(i int, line []byte) error {
			if _, err := w.Write(line); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
	cancel()
	wg.Wait()
}

// streamSubBatch posts one shard its slice of the batch and fans the
// streamed lines back into the global slots. Any leg failure —
// unreachable shard, non-200, truncated stream — turns the remaining
// indices into shard_unreachable error lines; it never hangs past the
// per-shard deadline.
func (r *Router) streamSubBatch(ctx context.Context, m *member, points []uint64, urls []string, idxs []int, slots []chan []byte) {
	for k, point := range points {
		defer m.track(point)() //nolint:gocritic // balanced at stream end by design
		_ = k
	}
	sub := make([]string, len(idxs))
	for k, i := range idxs {
		sub[k] = urls[i]
	}
	payload, _ := json.Marshal(map[string][]string{"urls": sub}) //nolint:errcheck

	failFrom := func(k int, code string, msg string) {
		for ; k < len(idxs); k++ {
			slots[idxs[k]] <- renderErrLine(urls[idxs[k]], code, msg)
		}
	}

	legCtx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(legCtx, http.MethodPost, m.base+"/v1/classify/batch", bytes.NewReader(payload))
	if err != nil {
		failFrom(0, "internal", err.Error())
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		m.healthy.Store(false)
		m.failed.Add(1)
		failFrom(0, "shard_unreachable", fmt.Sprintf("shard %s: %v", m.name, err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		failFrom(0, "shard_error", fmt.Sprintf("shard %s answered %d: %s", m.name, resp.StatusCode, bytes.TrimSpace(raw)))
		return
	}
	m.proxied.Add(1)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	k := 0
	for k < len(idxs) && sc.Scan() {
		line := append(append([]byte(nil), sc.Bytes()...), '\n')
		slots[idxs[k]] <- line
		k++
	}
	if k < len(idxs) {
		msg := fmt.Sprintf("shard %s stream truncated at line %d of %d", m.name, k, len(idxs))
		if err := sc.Err(); err != nil {
			msg += ": " + err.Error()
		}
		failFrom(k, "shard_unreachable", msg)
	}
}

// routerSample is the fleet's merged /v1/sample shape: the shard
// response plus the degraded-mode fields. Partial and MissingShards
// appear only when a shard could not contribute, so healthy-fleet
// responses stay shaped like a single shard's.
type routerSample struct {
	Total    int      `json:"total"`
	Offset   int      `json:"offset"`
	Count    int      `json:"count"`
	URLs     []string `json:"urls"`
	Articles []string `json:"articles,omitempty"`
	// ByShard reports each contributing shard's owned-population size.
	ByShard map[string]int `json:"by_shard"`
	// Partial is set when at least one shard's slice is missing; the
	// response then also carries Retry-After.
	Partial       bool     `json:"partial,omitempty"`
	MissingShards []string `json:"missing_shards,omitempty"`
}

// handleSample scatter-gathers the sampled population: every shard
// contributes its owned slice (view=owned), each leg under its own
// deadline, and the router interleaves the slices round-robin before
// applying offset/n. A missing shard — down, unreachable, or past its
// deadline — yields a flagged partial result with Retry-After instead
// of an error or a hang.
func (r *Router) handleSample(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	q := req.URL.Query()
	n := 100
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, "bad_n", "malformed n %q", v)
			return
		}
		n = parsed
	}
	offset := 0
	if v := q.Get("offset"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			writeError(w, http.StatusBadRequest, "bad_offset", "malformed offset %q", v)
			return
		}
		offset = parsed
	}
	withArticles := q.Get("articles") == "1" || q.Get("articles") == "true"

	type slice struct {
		total    int
		urls     []string
		articles []string
		err      error
	}
	slices := make([]slice, len(r.order))
	var wg sync.WaitGroup
	for i, name := range r.order {
		m := r.members[name]
		if !m.healthy.Load() {
			slices[i].err = fmt.Errorf("down")
			continue
		}
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(req.Context(), r.cfg.ShardTimeout)
			defer cancel()
			// Each shard is asked for enough of its slice to cover the
			// merged window: offset+n is an upper bound on any one
			// shard's contribution.
			target := fmt.Sprintf("%s/v1/sample?view=owned&n=%d", m.base, offset+n)
			if withArticles {
				target += "&articles=1"
			}
			out, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
			if err != nil {
				slices[i].err = err
				return
			}
			resp, err := r.client.Do(out)
			if err != nil {
				m.healthy.Store(false)
				m.failed.Add(1)
				slices[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				slices[i].err = fmt.Errorf("shard answered %d", resp.StatusCode)
				return
			}
			m.proxied.Add(1)
			var sr struct {
				Total    int      `json:"total"`
				URLs     []string `json:"urls"`
				Articles []string `json:"articles"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				slices[i].err = err
				return
			}
			slices[i] = slice{total: sr.Total, urls: sr.URLs, articles: sr.Articles}
		}(i, m)
	}
	wg.Wait()

	out := routerSample{Offset: offset, ByShard: make(map[string]int, len(r.order))}
	for i, name := range r.order {
		sl := slices[i]
		if sl.err != nil {
			out.Partial = true
			out.MissingShards = append(out.MissingShards, name)
			continue
		}
		out.Total += sl.total
		out.ByShard[name] = sl.total
	}
	// Interleave the slices round-robin rather than concatenating them:
	// any prefix of the merged listing then spreads across the whole
	// fleet, so a load generator sampling the first K URLs drives every
	// shard instead of hammering whichever member sorts first — the
	// sampling property the fleet workload's scaling measurement (and
	// any client wanting a representative cross-section) relies on.
	skip := offset
	for j := 0; len(out.URLs) < n; j++ {
		advanced := false
		for i := range r.order {
			sl := slices[i]
			if sl.err != nil || j >= len(sl.urls) {
				continue
			}
			advanced = true
			if skip > 0 {
				skip--
				continue
			}
			if len(out.URLs) >= n {
				break
			}
			out.URLs = append(out.URLs, sl.urls[j])
			if withArticles && j < len(sl.articles) {
				out.Articles = append(out.Articles, sl.articles[j])
			}
		}
		if !advanced {
			break
		}
	}
	out.Count = len(out.URLs)
	if out.Partial {
		w.Header().Set("Retry-After", strconv.Itoa(r.cfg.RetryAfterSec))
		r.degraded.Add(1)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(out) //nolint:errcheck
}

// handleHealthz reports fleet health: 200 with per-shard status. The
// router itself is healthy as long as it runs; "degraded" in the body
// is the load-balancer signal that some range of the keyspace is dark.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	shards := make(map[string]any, len(r.order))
	status := "ok"
	for _, name := range r.order {
		m := r.members[name]
		h := m.healthy.Load()
		if !h {
			status = "degraded"
		}
		shards[name] = map[string]any{"base": m.base, "healthy": h}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
		"status":     status,
		"generation": r.ring.Load().Generation(),
		"shards":     shards,
	})
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	shards := make(map[string]any, len(r.order))
	for _, name := range r.order {
		m := r.members[name]
		shards[name] = map[string]any{
			"healthy": m.healthy.Load(),
			"proxied": m.proxied.Load(),
			"failed":  m.failed.Load(),
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
		"generation": r.ring.Load().Generation(),
		"degraded":   r.degraded.Load(),
		"shards":     shards,
	})
}

func (r *Router) handleRing(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(r.ring.Load().State()) //nolint:errcheck
}

// handleRebalance moves the hash range owning a domain to another
// member. See Rebalance for the protocol.
func (r *Router) handleRebalance(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	var body struct {
		Domain string `json:"domain"`
		To     string `json:"to"`
	}
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad_body", "decoding request body: %v", err)
		return
	}
	if body.Domain == "" || body.To == "" {
		writeError(w, http.StatusBadRequest, "bad_rebalance", `body must carry "domain" and "to"`)
		return
	}
	res, err := r.Rebalance(req.Context(), body.Domain, body.To)
	if err != nil {
		writeError(w, http.StatusConflict, "rebalance_failed", "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(res) //nolint:errcheck
}

// RebalanceResult reports one completed handoff.
type RebalanceResult struct {
	Domain     string `json:"domain"`
	Point      uint64 `json:"point"`
	From       string `json:"from"`
	To         string `json:"to"`
	Generation int64  `json:"generation"`
	// Drained reports whether the old owner's in-flight requests on the
	// moved range hit zero within DrainTimeout (false means the wait
	// timed out; the handoff still completed — shards serve the full
	// universe, so a straggler finishes correctly on the old owner).
	Drained     bool  `json:"drained"`
	DrainWaitMS int64 `json:"drain_wait_ms"`
}

// Rebalance moves the hash range covering domain to member `to`:
//
//  1. the new owner learns the updated ring first (its owned sample
//     view widens before any traffic arrives);
//  2. the router cuts over — new requests for the range route to the
//     new owner;
//  3. the old owner's in-flight requests on the moved range drain
//     (bounded by DrainTimeout; stragglers finish correctly because
//     every shard can classify the full universe);
//  4. the updated ring propagates to the remaining members, best
//     effort, so their owned views converge.
//
// Handoffs serialize on an internal mutex; the target must be healthy.
func (r *Router) Rebalance(ctx context.Context, domain, to string) (*RebalanceResult, error) {
	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()

	target, ok := r.members[to]
	if !ok {
		return nil, fmt.Errorf("unknown member %q", to)
	}
	if !target.healthy.Load() {
		return nil, fmt.Errorf("target shard %s is down", to)
	}
	ring := r.ring.Load()
	next, from, point, err := ring.MoveDomain(domain, to)
	if err != nil {
		return nil, err
	}
	res := &RebalanceResult{Domain: domain, Point: point, From: from, To: to, Generation: next.Generation()}
	if from == to {
		res.Drained = true
		return res, nil // already owned; nothing to move
	}

	// 1. New owner first: it must accept the range before traffic cuts
	// over to it.
	if err := r.pushOwnership(ctx, target, next.State()); err != nil {
		return nil, fmt.Errorf("new owner %s rejected the ring: %w", to, err)
	}

	// 2. Cut over.
	r.ring.Store(next)

	// 3. Drain the old owner's in-flight work on the moved range.
	old := r.members[from]
	start := time.Now()
	deadline := start.Add(r.cfg.DrainTimeout)
	for old.inflightOn(point) > 0 && time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			res.DrainWaitMS = time.Since(start).Milliseconds()
			return res, nil
		case <-time.After(5 * time.Millisecond):
		}
	}
	res.Drained = old.inflightOn(point) == 0
	res.DrainWaitMS = time.Since(start).Milliseconds()

	// 4. Propagate to the rest of the fleet (best effort — a shard that
	// misses the update serves a stale owned view until the next push,
	// which only affects /v1/sample composition, not verdicts).
	for _, name := range r.order {
		if name == to {
			continue
		}
		if m := r.members[name]; m.healthy.Load() {
			r.pushOwnership(ctx, m, next.State()) //nolint:errcheck
		}
	}
	return res, nil
}

// pushOwnership POSTs a ring state to one shard's admin endpoint.
func (r *Router) pushOwnership(ctx context.Context, m *member, st RingState) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	legCtx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(legCtx, http.MethodPost, m.base+"/v1/shard/ownership", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("shard %s answered %d: %s", m.name, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return nil
}
