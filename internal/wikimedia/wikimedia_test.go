package wikimedia

import (
	"testing"

	"permadead/internal/simclock"
)

func d(n int) simclock.Day { return simclock.Day(n) }

func TestCreateAndCurrent(t *testing.T) {
	w := NewWiki()
	a := w.Create("Alpha", d(100), "UserA", "Intro text. [http://x.simtest/1 One]")
	if a.Current() == nil || a.Current().User != "UserA" {
		t.Fatalf("current = %+v", a.Current())
	}
	if w.Len() != 1 {
		t.Errorf("len = %d", w.Len())
	}
	if w.Article("Alpha") != a {
		t.Error("Article lookup failed")
	}
	if w.Article("Missing") != nil {
		t.Error("missing article should be nil")
	}
}

func TestDuplicateCreatePanics(t *testing.T) {
	w := NewWiki()
	w.Create("Alpha", d(1), "U", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate create should panic")
		}
	}()
	w.Create("Alpha", d(2), "U", "y")
}

func TestEditHistory(t *testing.T) {
	w := NewWiki()
	w.Create("Alpha", d(100), "UserA", "v1")
	rev, err := w.Edit("Alpha", d(200), "UserB", "update", "v2")
	if err != nil || rev.ID <= 1 {
		t.Fatalf("edit: %v, %+v", err, rev)
	}
	a := w.Article("Alpha")
	if len(a.Revisions) != 2 {
		t.Fatalf("revisions = %d", len(a.Revisions))
	}
	if a.Current().Text != "v2" {
		t.Errorf("current text = %q", a.Current().Text)
	}
	// Revisions are ordered and IDs increase.
	if a.Revisions[0].ID >= a.Revisions[1].ID {
		t.Error("revision IDs should increase")
	}
	if _, err := w.Edit("Missing", d(300), "U", "c", "x"); err == nil {
		t.Error("edit of missing article should fail")
	}
	if _, err := w.Edit("Alpha", d(150), "U", "backdated", "x"); err == nil {
		t.Error("backdated edit should fail")
	}
}

func TestRevisionAt(t *testing.T) {
	w := NewWiki()
	w.Create("Alpha", d(100), "U", "v1")
	w.Edit("Alpha", d(200), "U", "c", "v2")
	w.Edit("Alpha", d(300), "U", "c", "v3")
	a := w.Article("Alpha")
	cases := []struct {
		day  simclock.Day
		text string
	}{
		{d(100), "v1"}, {d(150), "v1"}, {d(200), "v2"}, {d(299), "v2"}, {d(1000), "v3"},
	}
	for _, c := range cases {
		rev := a.RevisionAt(c.day)
		if rev == nil || rev.Text != c.text {
			t.Errorf("RevisionAt(%v) = %+v, want %q", c.day, rev, c.text)
		}
	}
	if a.RevisionAt(d(99)) != nil {
		t.Error("before creation should be nil")
	}
}

func TestTitlesSorted(t *testing.T) {
	w := NewWiki()
	for _, title := range []string{"Charlie", "Alpha", "Bravo"} {
		w.Create(title, d(1), "U", "x")
	}
	got := w.Titles()
	if len(got) != 3 || got[0] != "Alpha" || got[1] != "Bravo" || got[2] != "Charlie" {
		t.Errorf("titles = %v", got)
	}
}

func TestInCategory(t *testing.T) {
	w := NewWiki()
	w.Create("Tagged", d(1), "U", "text [[Category:Articles with permanently dead external links]]")
	w.Create("Untagged", d(1), "U", "text")
	w.Create("Later", d(1), "U", "text")
	w.Edit("Later", d(2), "Bot", "tag", "text [[Category:Articles with permanently dead external links]]")

	got := w.InCategory("Articles with permanently dead external links")
	if len(got) != 2 || got[0] != "Later" || got[1] != "Tagged" {
		t.Errorf("in category = %v", got)
	}
}

func TestLinkAddedEvents(t *testing.T) {
	w := NewWiki()
	var events []LinkAddedEvent
	w.Subscribe(func(e LinkAddedEvent) { events = append(events, e) })

	w.Create("Alpha", d(100), "UserA", "[http://x.simtest/1 One]")
	if len(events) != 1 || events[0].URL != "http://x.simtest/1" || events[0].Day != d(100) {
		t.Fatalf("events = %+v", events)
	}
	// Editing without adding links emits nothing.
	w.Edit("Alpha", d(200), "UserB", "c", "[http://x.simtest/1 One] more prose")
	if len(events) != 1 {
		t.Fatalf("no-new-link edit emitted: %+v", events)
	}
	// Adding a second link emits one event.
	w.Edit("Alpha", d(300), "UserC", "c", "[http://x.simtest/1 One] [http://y.simtest/2 Two]")
	if len(events) != 2 || events[1].URL != "http://y.simtest/2" || events[1].User != "UserC" {
		t.Fatalf("events = %+v", events)
	}
}

func TestLinkRemovedEvents(t *testing.T) {
	w := NewWiki()
	var added []LinkAddedEvent
	var removed []LinkRemovedEvent
	w.Subscribe(func(e LinkAddedEvent) { added = append(added, e) })
	w.SubscribeRemoved(func(e LinkRemovedEvent) { removed = append(removed, e) })

	w.Create("Alpha", d(100), "UserA", "[http://x.simtest/1 One] [http://y.simtest/2 Two]")
	if len(removed) != 0 {
		t.Fatalf("creation emitted removals: %+v", removed)
	}
	// Dropping one link and adding another emits one removal (first)
	// and one addition, both stamped with the editing revision.
	w.Edit("Alpha", d(200), "UserB", "swap", "[http://x.simtest/1 One] [http://z.simtest/3 Three]")
	if len(removed) != 1 || removed[0].URL != "http://y.simtest/2" ||
		removed[0].Day != d(200) || removed[0].User != "UserB" || removed[0].Title != "Alpha" {
		t.Fatalf("removed = %+v", removed)
	}
	if len(added) != 3 || added[2].URL != "http://z.simtest/3" {
		t.Fatalf("added = %+v", added)
	}
	// A link cited twice and edited down to one occurrence is not
	// removed: the URL is still present in the revision.
	w.Edit("Alpha", d(300), "UserB", "dedupe", "[http://x.simtest/1 One]{{cite web|url=http://x.simtest/1|title=T}}")
	w.Edit("Alpha", d(400), "UserB", "trim", "[http://x.simtest/1 One]")
	if len(removed) != 2 || removed[1].URL != "http://z.simtest/3" {
		t.Fatalf("removed after dedupe/trim = %+v", removed)
	}
}

// TestSubscribeDuringEdits pins the post-generation Subscribe
// contract: listener registration must be safe while concurrent edits
// are emitting events (run under -race). Before listener lists became
// copy-on-write, Subscribe's in-place append could write into the
// same backing array an emitter was iterating.
func TestSubscribeDuringEdits(t *testing.T) {
	w := NewWiki()
	w.Create("Alpha", d(1), "U", "seed")

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			text := "[http://x.simtest/" + string(rune('a'+i%26)) + " L]"
			if _, err := w.Edit("Alpha", d(1+i), "U", "c", text); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 100; i++ {
		w.Subscribe(func(LinkAddedEvent) {})
		w.SubscribeRemoved(func(LinkRemovedEvent) {})
	}
	<-done
}

func TestHistoryOf(t *testing.T) {
	w := NewWiki()
	w.Create("Alpha", d(100), "Author", `Claim.<ref>{{cite web|url=http://x.simtest/1|title=T}}</ref>`)
	w.Edit("Alpha", d(500), "InternetArchiveBot", "tag dead",
		`Claim.<ref>{{cite web|url=http://x.simtest/1|title=T|url-status=dead}} {{dead link|date=X|bot=InternetArchiveBot}}</ref>`)

	h, ok := w.HistoryOf("Alpha", "http://x.simtest/1")
	if !ok {
		t.Fatal("history not found")
	}
	if h.Added != d(100) || h.AddedBy != "Author" {
		t.Errorf("added = %v by %q", h.Added, h.AddedBy)
	}
	if h.MarkedDead != d(500) || h.MarkedDeadBy != "InternetArchiveBot" {
		t.Errorf("marked = %v by %q", h.MarkedDead, h.MarkedDeadBy)
	}
	if h.DeadLinkBot != "InternetArchiveBot" {
		t.Errorf("bot = %q", h.DeadLinkBot)
	}
	if h.Patched {
		t.Error("not patched")
	}

	if _, ok := w.HistoryOf("Alpha", "http://never.simtest/"); ok {
		t.Error("unknown url should not have history")
	}
	if _, ok := w.HistoryOf("Missing", "http://x.simtest/1"); ok {
		t.Error("unknown article should not have history")
	}
}

func TestHistoryOfPatched(t *testing.T) {
	w := NewWiki()
	w.Create("Alpha", d(100), "Author", `<ref>{{cite web|url=http://x.simtest/1|title=T}}</ref>`)
	w.Edit("Alpha", d(600), "InternetArchiveBot", "rescue",
		`<ref>{{cite web|url=http://x.simtest/1|title=T|archive-url=https://web.archive.org/web/20150101000000/http://x.simtest/1|archive-date=2015-01-01|url-status=dead}}</ref>`)
	h, ok := w.HistoryOf("Alpha", "http://x.simtest/1")
	if !ok || !h.Patched {
		t.Fatalf("history = %+v, %v", h, ok)
	}
	if h.MarkedDead.Valid() {
		t.Error("patched link was never dead-tagged")
	}
}

func TestDeadLinks(t *testing.T) {
	w := NewWiki()
	w.Create("Alpha", d(100), "U",
		`<ref>[http://a.simtest/1 A] {{dead link|date=X|bot=InternetArchiveBot}}</ref>
<ref>[http://b.simtest/2 B]</ref>`)
	dead := w.DeadLinks("Alpha")
	if len(dead) != 1 || dead[0].URL != "http://a.simtest/1" {
		t.Errorf("dead = %+v", dead)
	}
	if w.DeadLinks("Missing") != nil {
		t.Error("missing article dead links should be nil")
	}
}

func TestEachArticle(t *testing.T) {
	w := NewWiki()
	w.Create("A", d(1), "U", "x")
	w.Create("B", d(1), "U", "y")
	n := 0
	w.EachArticle(func(*Article) { n++ })
	if n != 2 {
		t.Errorf("visited %d", n)
	}
}
