// Package wikimedia simulates the parts of Wikipedia the study touches:
// an article store with full edit history, category membership derived
// from wikitext, an alphabetical article listing (the paper crawls the
// first 10,000 articles of a category listing in title order, §2.4),
// and an event stream of external-link additions which the Internet
// Archive's capture services consume (§5.1).
//
// Every edit is a complete new revision, as in MediaWiki. The edit
// history is the source of truth for the three per-link facts the
// study extracts (§2.4): when a link was added, when it was marked
// permanently dead, and by which username.
package wikimedia

import (
	"fmt"
	"sort"
	"sync"

	"permadead/internal/simclock"
	"permadead/internal/wikitext"
)

// Revision is one saved version of an article.
type Revision struct {
	// ID is unique per wiki and increases with time.
	ID int
	// Day the revision was saved.
	Day simclock.Day
	// User is the account that saved it; bots have accounts too.
	User string
	// Comment is the edit summary.
	Comment string
	// Text is the full wikitext of the article at this revision.
	Text string
}

// Doc parses the revision's wikitext.
func (r *Revision) Doc() *wikitext.Document {
	return wikitext.Parse(r.Text)
}

// Article is a titled page with its complete revision history, oldest
// first.
type Article struct {
	Title     string
	Revisions []Revision
}

// Current returns the latest revision (nil for an empty history, which
// cannot happen for articles created through Wiki).
func (a *Article) Current() *Revision {
	if len(a.Revisions) == 0 {
		return nil
	}
	return &a.Revisions[len(a.Revisions)-1]
}

// RevisionAt returns the article text as of the given day: the last
// revision saved on or before it (nil when the article didn't exist).
func (a *Article) RevisionAt(day simclock.Day) *Revision {
	var found *Revision
	for i := range a.Revisions {
		if a.Revisions[i].Day.After(day) {
			break
		}
		found = &a.Revisions[i]
	}
	return found
}

// LinkAddedEvent is emitted when an edit introduces a previously-unseen
// external URL to an article — the signal the Wikipedia EventStream
// (and before it, the near-real-time IRC feed) exposes to archives.
type LinkAddedEvent struct {
	Title string
	URL   string
	Day   simclock.Day
	User  string
}

// Wiki is the article store. Safe for concurrent use.
type Wiki struct {
	mu        sync.RWMutex
	articles  map[string]*Article
	nextRevID int
	listeners []func(LinkAddedEvent)
}

// NewWiki returns an empty wiki.
func NewWiki() *Wiki {
	return &Wiki{articles: make(map[string]*Article), nextRevID: 1}
}

// Subscribe registers a listener for link-addition events. Listeners
// are invoked synchronously during Create/Edit, in registration order.
// Subscribe before generating content.
func (w *Wiki) Subscribe(fn func(LinkAddedEvent)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.listeners = append(w.listeners, fn)
}

// Create makes a new article with an initial revision. It panics on a
// duplicate title (generator bugs should be loud).
func (w *Wiki) Create(title string, day simclock.Day, user, text string) *Article {
	w.mu.Lock()
	if _, ok := w.articles[title]; ok {
		w.mu.Unlock()
		panic(fmt.Sprintf("wikimedia: duplicate article %q", title))
	}
	a := &Article{Title: title}
	a.Revisions = append(a.Revisions, Revision{
		ID: w.nextRevID, Day: day, User: user, Comment: "Created page", Text: text,
	})
	w.nextRevID++
	w.articles[title] = a
	listeners := w.listeners
	w.mu.Unlock()

	emitNewLinks(listeners, title, nil, text, day, user)
	return a
}

// Edit appends a revision to an existing article and emits link-added
// events for URLs that were not present in the previous revision. It
// returns the new revision, or an error for unknown titles.
func (w *Wiki) Edit(title string, day simclock.Day, user, comment, text string) (*Revision, error) {
	w.mu.Lock()
	a, ok := w.articles[title]
	if !ok {
		w.mu.Unlock()
		return nil, fmt.Errorf("wikimedia: no article %q", title)
	}
	prev := a.Current()
	if day.Before(prev.Day) {
		w.mu.Unlock()
		return nil, fmt.Errorf("wikimedia: edit to %q on %v predates last revision (%v)", title, day, prev.Day)
	}
	a.Revisions = append(a.Revisions, Revision{
		ID: w.nextRevID, Day: day, User: user, Comment: comment, Text: text,
	})
	w.nextRevID++
	rev := a.Current()
	listeners := w.listeners
	prevText := prev.Text
	w.mu.Unlock()

	emitNewLinks(listeners, title, &prevText, text, day, user)
	return rev, nil
}

func emitNewLinks(listeners []func(LinkAddedEvent), title string, prevText *string, text string, day simclock.Day, user string) {
	if len(listeners) == 0 {
		return
	}
	seen := make(map[string]struct{})
	if prevText != nil {
		for _, u := range wikitext.Parse(*prevText).ExternalURLs() {
			seen[u] = struct{}{}
		}
	}
	for _, u := range wikitext.Parse(text).ExternalURLs() {
		if _, ok := seen[u]; ok {
			continue
		}
		ev := LinkAddedEvent{Title: title, URL: u, Day: day, User: user}
		for _, fn := range listeners {
			fn(ev)
		}
	}
}

// Article returns the article with the given title, or nil.
func (w *Wiki) Article(title string) *Article {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.articles[title]
}

// Len returns the number of articles.
func (w *Wiki) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.articles)
}

// Titles returns all article titles in lexicographic order — the order
// the category listing presents them and the order the paper's crawl
// consumed them.
func (w *Wiki) Titles() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	ts := make([]string, 0, len(w.articles))
	for t := range w.articles {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	return ts
}

// EachArticle calls fn for every article in unspecified order.
func (w *Wiki) EachArticle(fn func(*Article)) {
	w.mu.RLock()
	arts := make([]*Article, 0, len(w.articles))
	for _, a := range w.articles {
		arts = append(arts, a)
	}
	w.mu.RUnlock()
	for _, a := range arts {
		fn(a)
	}
}

// InCategory returns the titles of articles whose *current* revision
// belongs to the named category, sorted lexicographically — mirroring
// https://en.wikipedia.org/wiki/Category:... listings.
func (w *Wiki) InCategory(category string) []string {
	var titles []string
	w.EachArticle(func(a *Article) {
		if a.Current().Doc().HasCategory(category) {
			titles = append(titles, a.Title)
		}
	})
	sort.Strings(titles)
	return titles
}

// Clone deep-copies the wiki: articles, revisions, and the revision
// counter. Listeners are not copied. Use it to run destructive
// experiments (e.g. a WaybackMedic pass) without disturbing the
// original.
func (w *Wiki) Clone() *Wiki {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := &Wiki{
		articles:  make(map[string]*Article, len(w.articles)),
		nextRevID: w.nextRevID,
	}
	for title, a := range w.articles {
		na := &Article{Title: a.Title, Revisions: make([]Revision, len(a.Revisions))}
		copy(na.Revisions, a.Revisions)
		out.articles[title] = na
	}
	return out
}
