// Package wikimedia simulates the parts of Wikipedia the study touches:
// an article store with full edit history, category membership derived
// from wikitext, an alphabetical article listing (the paper crawls the
// first 10,000 articles of a category listing in title order, §2.4),
// and an event stream of external-link additions and removals; the
// Internet Archive's capture services consume the additions (§5.1)
// and the continuous verdict monitor consumes both.
//
// Every edit is a complete new revision, as in MediaWiki. The edit
// history is the source of truth for the three per-link facts the
// study extracts (§2.4): when a link was added, when it was marked
// permanently dead, and by which username.
package wikimedia

import (
	"fmt"
	"sort"
	"sync"

	"permadead/internal/simclock"
	"permadead/internal/wikitext"
)

// Revision is one saved version of an article.
type Revision struct {
	// ID is unique per wiki and increases with time.
	ID int
	// Day the revision was saved.
	Day simclock.Day
	// User is the account that saved it; bots have accounts too.
	User string
	// Comment is the edit summary.
	Comment string
	// Text is the full wikitext of the article at this revision.
	Text string
}

// Doc parses the revision's wikitext.
func (r *Revision) Doc() *wikitext.Document {
	return wikitext.Parse(r.Text)
}

// Article is a titled page with its complete revision history, oldest
// first.
type Article struct {
	Title     string
	Revisions []Revision
}

// Current returns the latest revision (nil for an empty history, which
// cannot happen for articles created through Wiki).
func (a *Article) Current() *Revision {
	if len(a.Revisions) == 0 {
		return nil
	}
	return &a.Revisions[len(a.Revisions)-1]
}

// RevisionAt returns the article text as of the given day: the last
// revision saved on or before it (nil when the article didn't exist).
func (a *Article) RevisionAt(day simclock.Day) *Revision {
	var found *Revision
	for i := range a.Revisions {
		if a.Revisions[i].Day.After(day) {
			break
		}
		found = &a.Revisions[i]
	}
	return found
}

// LinkAddedEvent is emitted when an edit introduces a previously-unseen
// external URL to an article — the signal the Wikipedia EventStream
// (and before it, the near-real-time IRC feed) exposes to archives.
type LinkAddedEvent struct {
	Title string
	URL   string
	Day   simclock.Day
	User  string
}

// LinkRemovedEvent is emitted when an edit drops every occurrence of
// an external URL from an article. Archives never needed this signal
// (a capture is forever), but a live monitor does: a link edited out
// of its article no longer has a page whose citation health depends
// on it, so its watch can be released.
type LinkRemovedEvent struct {
	Title string
	URL   string
	Day   simclock.Day
	User  string
}

// Wiki is the article store. Safe for concurrent use.
//
// A wiki may be backed by an ArticleSource (SetSource), in which case
// articles materialize lazily on first lookup and the in-memory map
// only ever holds the touched working set — the serving shape the
// paged on-disk universe format uses.
type Wiki struct {
	mu        sync.RWMutex
	articles  map[string]*Article
	nextRevID int
	// Listener slices are copy-on-write: Subscribe* replaces the
	// slice under the write lock instead of appending in place, so an
	// emitter iterating a previously captured slice never races a new
	// registration (Subscribe is safe mid-stream, while edits flow).
	listeners        []func(LinkAddedEvent)
	removedListeners []func(LinkRemovedEvent)
	src              ArticleSource
}

// ArticleSource lazily supplies articles from external storage (a
// paged universe file). Implementations must be safe for concurrent
// use; LoadArticle returns a freshly built Article (nil for unknown
// titles) that the Wiki caches and owns from then on.
type ArticleSource interface {
	// LoadArticle materializes one article with its full revision
	// history, or nil when the title is not in the source.
	LoadArticle(title string) *Article
	// Titles returns every title in the source, sorted.
	Titles() []string
	// NumArticles returns the number of articles in the source.
	NumArticles() int
	// CategoryTitles returns the sorted titles whose current revision
	// (as of save time) belongs to the named category.
	CategoryTitles(category string) []string
	// MaxRevID is the highest revision ID in the source, so new edits
	// continue the ID sequence.
	MaxRevID() int
}

// NewWiki returns an empty wiki.
func NewWiki() *Wiki {
	return &Wiki{articles: make(map[string]*Article), nextRevID: 1}
}

// SetSource backs the wiki with a lazy article source. Call it once,
// before concurrent use; articles already in the map shadow the
// source, and the revision-ID sequence continues from the source's
// maximum.
func (w *Wiki) SetSource(src ArticleSource) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.src = src
	if id := src.MaxRevID() + 1; id > w.nextRevID {
		w.nextRevID = id
	}
}

// lookupLocked returns the article for title, faulting it in from the
// source if needed. Caller holds the write lock.
func (w *Wiki) lookupLocked(title string) *Article {
	if a, ok := w.articles[title]; ok {
		return a
	}
	if w.src == nil {
		return nil
	}
	if a := w.src.LoadArticle(title); a != nil {
		w.articles[title] = a
		return a
	}
	return nil
}

// Subscribe registers a listener for link-addition events. Listeners
// are invoked synchronously during Create/Edit, in registration order.
// Safe to call at any time, including after content generation while
// concurrent edits are emitting: a registration only applies to edits
// that start after it.
func (w *Wiki) Subscribe(fn func(LinkAddedEvent)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	next := make([]func(LinkAddedEvent), len(w.listeners), len(w.listeners)+1)
	copy(next, w.listeners)
	w.listeners = append(next, fn)
}

// SubscribeRemoved registers a listener for link-removal events, with
// the same invocation and registration-timing contract as Subscribe.
func (w *Wiki) SubscribeRemoved(fn func(LinkRemovedEvent)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	next := make([]func(LinkRemovedEvent), len(w.removedListeners), len(w.removedListeners)+1)
	copy(next, w.removedListeners)
	w.removedListeners = append(next, fn)
}

// Create makes a new article with an initial revision. It panics on a
// duplicate title (generator bugs should be loud).
func (w *Wiki) Create(title string, day simclock.Day, user, text string) *Article {
	w.mu.Lock()
	if w.lookupLocked(title) != nil {
		w.mu.Unlock()
		panic(fmt.Sprintf("wikimedia: duplicate article %q", title))
	}
	a := &Article{Title: title}
	a.Revisions = append(a.Revisions, Revision{
		ID: w.nextRevID, Day: day, User: user, Comment: "Created page", Text: text,
	})
	w.nextRevID++
	w.articles[title] = a
	added, removed := w.listeners, w.removedListeners
	w.mu.Unlock()

	emitLinkDiff(added, removed, title, nil, text, day, user)
	return a
}

// Edit appends a revision to an existing article and emits link-added
// events for URLs that were not present in the previous revision. It
// returns the new revision, or an error for unknown titles.
func (w *Wiki) Edit(title string, day simclock.Day, user, comment, text string) (*Revision, error) {
	w.mu.Lock()
	a := w.lookupLocked(title)
	if a == nil {
		w.mu.Unlock()
		return nil, fmt.Errorf("wikimedia: no article %q", title)
	}
	prev := a.Current()
	if day.Before(prev.Day) {
		w.mu.Unlock()
		return nil, fmt.Errorf("wikimedia: edit to %q on %v predates last revision (%v)", title, day, prev.Day)
	}
	a.Revisions = append(a.Revisions, Revision{
		ID: w.nextRevID, Day: day, User: user, Comment: comment, Text: text,
	})
	w.nextRevID++
	rev := a.Current()
	added, removed := w.listeners, w.removedListeners
	prevText := prev.Text
	w.mu.Unlock()

	emitLinkDiff(added, removed, title, &prevText, text, day, user)
	return rev, nil
}

// emitLinkDiff walks the external-URL sets of the previous and new
// revisions once and emits one LinkAddedEvent per URL newly present
// and one LinkRemovedEvent per URL no longer present. Removal events
// fire before addition events so a consumer tracking membership (the
// verdict monitor) never double-counts a URL mid-edit.
func emitLinkDiff(added []func(LinkAddedEvent), removed []func(LinkRemovedEvent), title string, prevText *string, text string, day simclock.Day, user string) {
	if len(added) == 0 && len(removed) == 0 {
		return
	}
	prev := make(map[string]struct{})
	if prevText != nil {
		for _, u := range wikitext.Parse(*prevText).ExternalURLs() {
			prev[u] = struct{}{}
		}
	}
	curList := wikitext.Parse(text).ExternalURLs()
	cur := make(map[string]struct{}, len(curList))
	for _, u := range curList {
		cur[u] = struct{}{}
	}
	if len(removed) > 0 && prevText != nil {
		// Iterate the parse-order list of the previous revision so
		// removal order is deterministic.
		for _, u := range wikitext.Parse(*prevText).ExternalURLs() {
			if _, still := cur[u]; still {
				continue
			}
			ev := LinkRemovedEvent{Title: title, URL: u, Day: day, User: user}
			for _, fn := range removed {
				fn(ev)
			}
		}
	}
	if len(added) > 0 {
		for _, u := range curList {
			if _, had := prev[u]; had {
				continue
			}
			ev := LinkAddedEvent{Title: title, URL: u, Day: day, User: user}
			for _, fn := range added {
				fn(ev)
			}
		}
	}
}

// Article returns the article with the given title, or nil. On a
// source-backed wiki a miss faults the article in from the source; the
// loaded instance is cached, so concurrent callers converge on one
// *Article per title.
func (w *Wiki) Article(title string) *Article {
	w.mu.RLock()
	a, cached := w.articles[title]
	src := w.src
	w.mu.RUnlock()
	if cached || src == nil {
		return a
	}
	// Load outside the lock: source reads are concurrent-safe and may
	// touch disk. The write lock only arbitrates which copy wins.
	loaded := src.LoadArticle(title)
	if loaded == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if a, cached := w.articles[title]; cached {
		return a
	}
	w.articles[title] = loaded
	return loaded
}

// Len returns the number of articles (the source's count on a
// source-backed wiki).
func (w *Wiki) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.src != nil {
		return w.src.NumArticles()
	}
	return len(w.articles)
}

// Titles returns all article titles in lexicographic order — the order
// the category listing presents them and the order the paper's crawl
// consumed them.
func (w *Wiki) Titles() []string {
	w.mu.RLock()
	src := w.src
	w.mu.RUnlock()
	if src != nil {
		return src.Titles()
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	ts := make([]string, 0, len(w.articles))
	for t := range w.articles {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	return ts
}

// EachArticle calls fn for every article in unspecified order. On a
// source-backed wiki this materializes every article — it is the
// whole-universe escape hatch (re-saves, spot audits), not a serving
// path.
func (w *Wiki) EachArticle(fn func(*Article)) {
	w.mu.RLock()
	src := w.src
	w.mu.RUnlock()
	if src != nil {
		for _, t := range src.Titles() {
			if a := w.Article(t); a != nil {
				fn(a)
			}
		}
		return
	}
	w.mu.RLock()
	arts := make([]*Article, 0, len(w.articles))
	for _, a := range w.articles {
		arts = append(arts, a)
	}
	w.mu.RUnlock()
	for _, a := range arts {
		fn(a)
	}
}

// InCategory returns the titles of articles whose *current* revision
// belongs to the named category, sorted lexicographically — mirroring
// https://en.wikipedia.org/wiki/Category:... listings.
//
// On a source-backed wiki the stored category index answers for
// articles still on disk, while articles already faulted in (and
// possibly edited since) are re-checked live — so membership stays
// correct without materializing the whole wiki.
func (w *Wiki) InCategory(category string) []string {
	w.mu.RLock()
	src := w.src
	var loaded []*Article
	if src != nil {
		loaded = make([]*Article, 0, len(w.articles))
		for _, a := range w.articles {
			loaded = append(loaded, a)
		}
	}
	w.mu.RUnlock()

	if src != nil {
		inMem := make(map[string]bool, len(loaded))
		var titles []string
		for _, a := range loaded {
			inMem[a.Title] = true
			if a.Current().Doc().HasCategory(category) {
				titles = append(titles, a.Title)
			}
		}
		for _, t := range src.CategoryTitles(category) {
			if !inMem[t] {
				titles = append(titles, t)
			}
		}
		sort.Strings(titles)
		return titles
	}

	var titles []string
	w.EachArticle(func(a *Article) {
		if a.Current().Doc().HasCategory(category) {
			titles = append(titles, a.Title)
		}
	})
	sort.Strings(titles)
	return titles
}

// Clone deep-copies the wiki: articles, revisions, and the revision
// counter. Listeners are not copied. Use it to run destructive
// experiments (e.g. a WaybackMedic pass) without disturbing the
// original. On a source-backed wiki every article is materialized
// first — the clone is fully in-memory.
func (w *Wiki) Clone() *Wiki {
	w.mu.RLock()
	src := w.src
	w.mu.RUnlock()
	if src != nil {
		w.EachArticle(func(*Article) {}) // fault everything in
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := &Wiki{
		articles:  make(map[string]*Article, len(w.articles)),
		nextRevID: w.nextRevID,
	}
	for title, a := range w.articles {
		na := &Article{Title: a.Title, Revisions: make([]Revision, len(a.Revisions))}
		copy(na.Revisions, a.Revisions)
		out.articles[title] = na
	}
	return out
}
