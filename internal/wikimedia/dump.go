package wikimedia

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"time"

	"permadead/internal/simclock"
)

// MediaWiki XML dump interchange: the simulated wiki exports and
// imports the subset of the real dump schema
// (https://www.mediawiki.org/xml/export-0.11/) that the study needs —
// page titles and full revision histories with timestamps,
// contributors, comments, and wikitext. The paper's pipeline could run
// off a dump instead of the live store; this makes the simulated
// corpus interchangeable with external tools.

// xmlDump is the root <mediawiki> element.
type xmlDump struct {
	XMLName  xml.Name  `xml:"mediawiki"`
	Version  string    `xml:"version,attr"`
	SiteInfo xmlSite   `xml:"siteinfo"`
	Pages    []xmlPage `xml:"page"`
}

type xmlSite struct {
	SiteName string `xml:"sitename"`
	DBName   string `xml:"dbname"`
}

type xmlPage struct {
	Title     string        `xml:"title"`
	NS        int           `xml:"ns"`
	Revisions []xmlRevision `xml:"revision"`
}

type xmlRevision struct {
	ID          int            `xml:"id"`
	Timestamp   string         `xml:"timestamp"`
	Contributor xmlContributor `xml:"contributor"`
	Comment     string         `xml:"comment,omitempty"`
	Text        xmlText        `xml:"text"`
}

type xmlContributor struct {
	Username string `xml:"username"`
}

type xmlText struct {
	Space string `xml:"xml:space,attr,omitempty"`
	Value string `xml:",chardata"`
}

// WriteDump exports the whole wiki as a MediaWiki XML dump, pages in
// title order, revisions oldest first.
func (w *Wiki) WriteDump(out io.Writer) error {
	dump := xmlDump{
		Version:  "0.11",
		SiteInfo: xmlSite{SiteName: "Simulated Wikipedia", DBName: "simwiki"},
	}
	for _, title := range w.Titles() {
		a := w.Article(title)
		page := xmlPage{Title: a.Title}
		for _, rev := range a.Revisions {
			page.Revisions = append(page.Revisions, xmlRevision{
				ID:          rev.ID,
				Timestamp:   rev.Day.Time().Format("2006-01-02T15:04:05Z"),
				Contributor: xmlContributor{Username: rev.User},
				Comment:     rev.Comment,
				Text:        xmlText{Space: "preserve", Value: rev.Text},
			})
		}
		dump.Pages = append(dump.Pages, page)
	}

	if _, err := io.WriteString(out, xml.Header); err != nil {
		return fmt.Errorf("wikimedia: dump: %w", err)
	}
	enc := xml.NewEncoder(out)
	enc.Indent("", "  ")
	if err := enc.Encode(&dump); err != nil {
		return fmt.Errorf("wikimedia: dump: %w", err)
	}
	if err := enc.Close(); err != nil {
		return fmt.Errorf("wikimedia: dump: %w", err)
	}
	_, err := io.WriteString(out, "\n")
	return err
}

// ReadDump builds a wiki from a MediaWiki XML dump. Revisions are
// replayed oldest-first per page; revision IDs are re-assigned in
// global timestamp order, matching what a fresh wiki would have done.
func ReadDump(in io.Reader) (*Wiki, error) {
	var dump xmlDump
	if err := xml.NewDecoder(in).Decode(&dump); err != nil {
		return nil, fmt.Errorf("wikimedia: read dump: %w", err)
	}

	// Replay every revision across all pages in day order so edits to
	// different articles interleave exactly as they originally did.
	type pending struct {
		title string
		rev   xmlRevision
		day   simclock.Day
		first bool
	}
	var all []pending
	for _, p := range dump.Pages {
		for i, rev := range p.Revisions {
			day, err := parseDumpTime(rev.Timestamp)
			if err != nil {
				return nil, fmt.Errorf("wikimedia: read dump: page %q: %w", p.Title, err)
			}
			all = append(all, pending{title: p.Title, rev: rev, day: day, first: i == 0})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].day != all[j].day {
			return all[i].day < all[j].day
		}
		return all[i].rev.ID < all[j].rev.ID
	})

	w := NewWiki()
	for _, p := range all {
		if p.first {
			w.Create(p.title, p.day, p.rev.Contributor.Username, p.rev.Text.Value)
			continue
		}
		if _, err := w.Edit(p.title, p.day, p.rev.Contributor.Username, p.rev.Comment, p.rev.Text.Value); err != nil {
			return nil, fmt.Errorf("wikimedia: read dump: %w", err)
		}
	}
	return w, nil
}

func parseDumpTime(ts string) (simclock.Day, error) {
	if len(ts) < 10 {
		return 0, fmt.Errorf("malformed timestamp %q", ts)
	}
	// The date prefix is all the simulation needs (day granularity).
	var y, m, d int
	if _, err := fmt.Sscanf(ts[:10], "%04d-%02d-%02d", &y, &m, &d); err != nil {
		return 0, fmt.Errorf("malformed timestamp %q: %w", ts, err)
	}
	return simclock.FromDate(y, time.Month(m), d), nil
}
