package wikimedia

import (
	"bytes"
	"strings"
	"testing"
)

func buildDumpWiki() *Wiki {
	w := NewWiki()
	w.Create("Beta Article", d(100), "Author1", `Intro.<ref>{{cite web|url=http://a.simtest/1|title=One}}</ref>`)
	w.Create("Alpha Article", d(150), "Author2", `Text [http://b.simtest/2 Two].`)
	w.Edit("Beta Article", d(300), "InternetArchiveBot", "Tagging dead links. #IABot",
		`Intro.<ref>{{cite web|url=http://a.simtest/1|title=One|url-status=dead}} {{dead link|date=X|bot=InternetArchiveBot}}</ref>
[[Category:Articles with permanently dead external links]]`)
	w.Edit("Alpha Article", d(200), "Author3", "expand", `Text [http://b.simtest/2 Two]. More.`)
	return w
}

func TestDumpRoundTrip(t *testing.T) {
	w := buildDumpWiki()
	var buf bytes.Buffer
	if err := w.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<mediawiki", `version="0.11"`, "<page>", "<revision>",
		"Alpha Article", "Beta Article", "InternetArchiveBot",
		"Tagging dead links. #IABot",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q", want)
		}
	}

	w2, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Len() != w.Len() {
		t.Fatalf("article count %d vs %d", w2.Len(), w.Len())
	}
	for _, title := range w.Titles() {
		a, b := w.Article(title), w2.Article(title)
		if len(a.Revisions) != len(b.Revisions) {
			t.Fatalf("%q revisions %d vs %d", title, len(a.Revisions), len(b.Revisions))
		}
		for i := range a.Revisions {
			ra, rb := a.Revisions[i], b.Revisions[i]
			if ra.Day != rb.Day || ra.User != rb.User || ra.Text != rb.Text {
				t.Errorf("%q rev %d differs: %+v vs %+v", title, i, ra, rb)
			}
		}
	}

	// Semantic queries survive the round-trip.
	h1, ok1 := w.HistoryOf("Beta Article", "http://a.simtest/1")
	h2, ok2 := w2.HistoryOf("Beta Article", "http://a.simtest/1")
	if !ok1 || !ok2 || h1.MarkedDead != h2.MarkedDead || h1.MarkedDeadBy != h2.MarkedDeadBy {
		t.Errorf("history differs: %+v vs %+v", h1, h2)
	}
	if got := w2.InCategory("Articles with permanently dead external links"); len(got) != 1 {
		t.Errorf("category after round-trip: %v", got)
	}
}

func TestDumpEscapesMarkup(t *testing.T) {
	w := NewWiki()
	w.Create("Escapes", d(10), "U", `Text with <ref> tags & {{templates|a=1}} and "quotes".`)
	var buf bytes.Buffer
	if err := w.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Article("Escapes").Current().Text; got != w.Article("Escapes").Current().Text {
		t.Errorf("text corrupted: %q", got)
	}
}

func TestReadDumpRejectsGarbage(t *testing.T) {
	if _, err := ReadDump(strings.NewReader("not xml at all")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadDump(strings.NewReader(
		`<mediawiki version="0.11"><page><title>X</title><revision><id>1</id><timestamp>garbage</timestamp><contributor><username>u</username></contributor><text>t</text></revision></page></mediawiki>`)); err == nil {
		t.Error("bad timestamp should fail")
	}
}
