package wikimedia

import (
	"permadead/internal/simclock"
	"permadead/internal/wikitext"
)

// LinkHistory is what the study mines from an article's edit history
// for one external URL (§2.4): when the link was added, when it was
// tagged {{dead link}}, and by whom.
type LinkHistory struct {
	Title string
	URL   string
	// Added is the day of the first revision containing the URL.
	Added simclock.Day
	// AddedBy is the user who saved that revision.
	AddedBy string
	// MarkedDead is the day of the first revision in which the URL
	// carries a {{dead link}} tag (simclock.Never when never tagged).
	MarkedDead simclock.Day
	// MarkedDeadBy is the user who saved the tagging revision.
	MarkedDeadBy string
	// DeadLinkBot is the bot= parameter of the {{dead link}} template
	// in the tagging revision ("" for manual tags).
	DeadLinkBot string
	// Patched reports whether the current revision carries an archived
	// copy for the URL.
	Patched bool
	// ArchiveURL is the attached archive link in the current revision.
	ArchiveURL string
}

// HistoryOf reconstructs the LinkHistory for url in the titled article
// by walking its revisions oldest-first. It returns ok=false when the
// article does not exist or never contained the URL.
func (w *Wiki) HistoryOf(title, url string) (LinkHistory, bool) {
	a := w.Article(title)
	if a == nil {
		return LinkHistory{}, false
	}
	h := LinkHistory{
		Title:      title,
		URL:        url,
		Added:      simclock.Never,
		MarkedDead: simclock.Never,
	}
	for i := range a.Revisions {
		rev := &a.Revisions[i]
		link := findLink(rev.Doc(), url)
		if link == nil {
			continue
		}
		if !h.Added.Valid() {
			h.Added = rev.Day
			h.AddedBy = rev.User
		}
		if !h.MarkedDead.Valid() && link.IsDead() {
			h.MarkedDead = rev.Day
			h.MarkedDeadBy = rev.User
			h.DeadLinkBot = link.DeadLinkBot()
		}
	}
	if !h.Added.Valid() {
		return LinkHistory{}, false
	}
	if cur := findLink(a.Current().Doc(), url); cur != nil {
		h.ArchiveURL = cur.ArchiveURL()
		h.Patched = h.ArchiveURL != ""
	}
	return h, true
}

// findLink locates the CitedLink for url in a document (first match).
func findLink(doc *wikitext.Document, url string) *wikitext.CitedLink {
	for _, cl := range doc.CitedLinks() {
		if cl.URL == url {
			return cl
		}
	}
	return nil
}

// DeadLinks lists, for the article's current revision, every cited
// link carrying a {{dead link}} tag.
func (w *Wiki) DeadLinks(title string) []*wikitext.CitedLink {
	a := w.Article(title)
	if a == nil {
		return nil
	}
	var out []*wikitext.CitedLink
	for _, cl := range a.Current().Doc().CitedLinks() {
		if cl.IsDead() {
			out = append(out, cl)
		}
	}
	return out
}
