package simclock

import (
	"fmt"
	"sync"
)

// Clock is a tickable simulated clock: a current Day that only moves
// forward. Long-running components (the verdict monitor) read "now"
// from a Clock instead of pinning a single study day, and tests drive
// time explicitly — there is no wall-clock coupling, so every schedule
// derived from a Clock is deterministic.
//
// Safe for concurrent use. Reads never block behind an in-progress
// Advance.
type Clock struct {
	mu  sync.RWMutex
	day Day
}

// NewClock returns a clock standing at start.
func NewClock(start Day) *Clock {
	return &Clock{day: start}
}

// Now returns the clock's current day.
func (c *Clock) Now() Day {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.day
}

// Advance moves the clock forward n days (n >= 0) and returns the new
// day. Negative n is rejected: simulated time never rewinds, because
// every consumer's scheduling state (recheck heaps, journals) assumes
// monotonic days.
func (c *Clock) Advance(n int) (Day, error) {
	if n < 0 {
		return 0, fmt.Errorf("simclock: cannot advance clock by %d days (time never rewinds)", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.day = c.day.Add(n)
	return c.day, nil
}

// AdvanceTo moves the clock to day, which must not precede the
// current day.
func (c *Clock) AdvanceTo(day Day) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if day.Before(c.day) {
		return fmt.Errorf("simclock: cannot rewind clock from %v to %v", c.day, day)
	}
	c.day = day
	return nil
}
