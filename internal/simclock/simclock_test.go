package simclock

import (
	"testing"
	"time"
)

func TestFromDateRoundTrip(t *testing.T) {
	cases := []struct {
		y int
		m time.Month
		d int
	}{
		{2004, time.January, 1},
		{2004, time.January, 2},
		{2007, time.June, 15},
		{2015, time.December, 31},
		{2022, time.March, 15},
		{2022, time.September, 15},
	}
	for _, c := range cases {
		day := FromDate(c.y, c.m, c.d)
		back := day.Time()
		if back.Year() != c.y || back.Month() != c.m || back.Day() != c.d {
			t.Errorf("FromDate(%d,%v,%d) = %v, round-trips to %v", c.y, c.m, c.d, day, back)
		}
	}
}

func TestEpochIsDayZero(t *testing.T) {
	if got := FromTime(Epoch); got != 0 {
		t.Errorf("FromTime(Epoch) = %d, want 0", got)
	}
	if got := FromDate(2004, time.January, 2); got != 1 {
		t.Errorf("day after epoch = %d, want 1", got)
	}
}

func TestNeverSemantics(t *testing.T) {
	d := FromDate(2020, time.May, 1)
	if Never.Valid() {
		t.Error("Never should not be Valid")
	}
	if Never.Before(d) {
		t.Error("Never should not be Before any valid day")
	}
	if !d.Before(Never) {
		t.Error("a valid day should be Before Never")
	}
	if !Never.After(d) {
		t.Error("Never should be After any valid day")
	}
	if Never.Before(Never) {
		t.Error("Never should not be Before itself")
	}
}

func TestBeforeAfter(t *testing.T) {
	a := FromDate(2010, time.March, 1)
	b := FromDate(2010, time.March, 2)
	if !a.Before(b) || b.Before(a) {
		t.Error("Before ordering wrong")
	}
	if !b.After(a) || a.After(b) {
		t.Error("After ordering wrong")
	}
	if a.Before(a) || a.After(a) {
		t.Error("a day is neither before nor after itself")
	}
}

func TestAddSub(t *testing.T) {
	a := FromDate(2010, time.March, 1)
	b := a.Add(31)
	if b.Sub(a) != 31 {
		t.Errorf("Sub = %d, want 31", b.Sub(a))
	}
	if got := a.Add(-1).Add(1); got != a {
		t.Errorf("Add(-1).Add(1) = %v, want %v", got, a)
	}
	if got := Never.Add(5); got != Never {
		t.Errorf("Never.Add(5) = %v, want Never", got)
	}
}

func TestStringFormats(t *testing.T) {
	d := FromDate(2014, time.July, 9)
	if got := d.String(); got != "2014-07-09" {
		t.Errorf("String = %q", got)
	}
	if got := Never.String(); got != "never" {
		t.Errorf("Never.String = %q", got)
	}
	if got := d.Timestamp(); got != "20140709000000" {
		t.Errorf("Timestamp = %q", got)
	}
}

func TestParseTimestamp(t *testing.T) {
	d := FromDate(2014, time.July, 9)
	got, err := ParseTimestamp("20140709000000")
	if err != nil || got != d {
		t.Errorf("ParseTimestamp full = %v, %v", got, err)
	}
	// Short timestamps parse as prefixes.
	got, err = ParseTimestamp("2014")
	if err != nil || got.Year() != 2014 {
		t.Errorf("ParseTimestamp year = %v, %v", got, err)
	}
	got, err = ParseTimestamp("201407")
	if err != nil || got.Time().Month() != time.July {
		t.Errorf("ParseTimestamp month = %v, %v", got, err)
	}
	if _, err := ParseTimestamp("xx"); err == nil {
		t.Error("ParseTimestamp should reject garbage")
	}
	if _, err := ParseTimestamp(""); err == nil {
		t.Error("ParseTimestamp should reject empty")
	}
	if _, err := ParseTimestamp("201407090000001"); err == nil {
		t.Error("ParseTimestamp should reject over-long input")
	}
}

func TestTimestampRoundTrip(t *testing.T) {
	for _, d := range []Day{0, 100, 5000, StudyTime, ResampleTime} {
		got, err := ParseTimestamp(d.Timestamp())
		if err != nil || got != d {
			t.Errorf("round trip %v -> %q -> %v, %v", d, d.Timestamp(), got, err)
		}
	}
}

func TestStudyTimes(t *testing.T) {
	if StudyTime.Year() != 2022 || StudyTime.Time().Month() != time.March {
		t.Errorf("StudyTime = %v, want March 2022", StudyTime)
	}
	if !StudyTime.Before(ResampleTime) {
		t.Error("StudyTime should precede ResampleTime")
	}
}

func TestRange(t *testing.T) {
	var got []Day
	Range(5, 8, func(d Day) { got = append(got, d) })
	if len(got) != 4 || got[0] != 5 || got[3] != 8 {
		t.Errorf("Range produced %v", got)
	}
}
