// Package simclock provides the simulated timeline used throughout the
// reproduction. The study's world evolves at day granularity between 2004
// (before the first links are posted) and March 2022 (when the paper's
// measurements were taken), so a Day is simply a count of days since the
// simulation epoch.
//
// Using an explicit simulated clock instead of time.Now keeps every
// component deterministic: the synthetic web answers requests "as of" a
// Day, the archive records captures at a Day, and Wikipedia edit history
// stores the Day of every revision.
package simclock

import (
	"fmt"
	"time"
)

// Epoch is day zero of the simulation: January 1, 2004 (UTC). Wikipedia
// predates this, but the paper's dataset of permanently dead links spans
// roughly 15 years ending March 2022 (§2.4), so a 2004 epoch comfortably
// covers every event of interest.
var Epoch = time.Date(2004, time.January, 1, 0, 0, 0, 0, time.UTC)

// Day is a simulated date, counted in days since Epoch.
type Day int

// Special sentinel values.
const (
	// Never marks an event that does not occur (e.g. a page that is
	// never deleted).
	Never Day = -1
)

// StudyTime is the Day on which the paper's live-web measurements were
// taken: March 15, 2022 (§2.4, "Over the course of March 2022").
var StudyTime = FromTime(time.Date(2022, time.March, 15, 0, 0, 0, 0, time.UTC))

// ResampleTime is the Day of the paper's representativeness re-crawl:
// September 15, 2022 (§2.4, "Later, in September 2022").
var ResampleTime = FromTime(time.Date(2022, time.September, 15, 0, 0, 0, 0, time.UTC))

// FromTime converts a wall-clock time to a simulated Day, truncating to
// day granularity.
func FromTime(t time.Time) Day {
	return Day(t.Sub(Epoch) / (24 * time.Hour))
}

// FromDate builds a Day from a calendar date.
func FromDate(year int, month time.Month, day int) Day {
	return FromTime(time.Date(year, month, day, 0, 0, 0, 0, time.UTC))
}

// Time converts the Day back to a wall-clock time at midnight UTC.
func (d Day) Time() time.Time {
	return Epoch.Add(time.Duration(d) * 24 * time.Hour)
}

// Year reports the calendar year the Day falls in.
func (d Day) Year() int { return d.Time().Year() }

// Valid reports whether the Day is a real date (not the Never sentinel
// and not before the epoch).
func (d Day) Valid() bool { return d >= 0 }

// Before reports whether d is strictly earlier than other. The Never
// sentinel is after every valid day, so an event that never happens is
// never "before" one that does.
func (d Day) Before(other Day) bool {
	if !d.Valid() {
		return false
	}
	if !other.Valid() {
		return true
	}
	return d < other
}

// After reports whether d is strictly later than other, with the same
// Never semantics as Before.
func (d Day) After(other Day) bool {
	return other.Before(d)
}

// Add returns the Day n days later (or earlier for negative n).
func (d Day) Add(n int) Day {
	if !d.Valid() {
		return d
	}
	return d + Day(n)
}

// Sub returns the number of days from other to d.
func (d Day) Sub(other Day) int { return int(d - other) }

// String formats the Day as an ISO date, or "never" for the sentinel.
func (d Day) String() string {
	if !d.Valid() {
		return "never"
	}
	return d.Time().Format("2006-01-02")
}

// Timestamp formats the Day in the Wayback Machine's 14-digit timestamp
// format (yyyyMMddhhmmss), which the archive package uses in snapshot
// URLs such as https://web.archive.org/web/20140102000000/http://...
func (d Day) Timestamp() string {
	if !d.Valid() {
		return "00000000000000"
	}
	return d.Time().Format("20060102150405")
}

// ParseTimestamp parses a Wayback-style 14-digit (or shorter prefix)
// timestamp back into a Day.
func ParseTimestamp(ts string) (Day, error) {
	const full = "20060102150405"
	if len(ts) < 4 || len(ts) > len(full) {
		return 0, fmt.Errorf("simclock: malformed timestamp %q", ts)
	}
	t, err := time.ParseInLocation(full[:len(ts)], ts, time.UTC)
	if err != nil {
		return 0, fmt.Errorf("simclock: malformed timestamp %q: %w", ts, err)
	}
	return FromTime(t), nil
}

// Range iterates from lo to hi inclusive, calling fn for each day. It is
// a convenience for generators that sweep the timeline.
func Range(lo, hi Day, fn func(Day)) {
	for d := lo; d <= hi; d++ {
		fn(d)
	}
}
