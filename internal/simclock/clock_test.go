package simclock

import (
	"sync"
	"testing"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock(FromDate(2022, 3, 15))
	if got := c.Now(); got != FromDate(2022, 3, 15) {
		t.Fatalf("Now = %v", got)
	}
	day, err := c.Advance(10)
	if err != nil || day != FromDate(2022, 3, 25) {
		t.Fatalf("Advance(10) = %v, %v", day, err)
	}
	if _, err := c.Advance(-1); err == nil {
		t.Error("Advance(-1) should be rejected")
	}
	if err := c.AdvanceTo(FromDate(2022, 1, 1)); err == nil {
		t.Error("AdvanceTo a past day should be rejected")
	}
	if err := c.AdvanceTo(FromDate(2022, 4, 1)); err != nil {
		t.Errorf("AdvanceTo forward: %v", err)
	}
	if got := c.Now(); got != FromDate(2022, 4, 1) {
		t.Errorf("Now after AdvanceTo = %v", got)
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := c.Advance(1); err != nil {
					t.Error(err)
					return
				}
				_ = c.Now()
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 800 {
		t.Errorf("after 8x100 single-day advances, Now = %v, want 800", got)
	}
}
