package permadead

import (
	"context"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"permadead/internal/core"
	"permadead/internal/fetch"
	"permadead/internal/simclock"
	"permadead/internal/simweb"
	"permadead/internal/worldgen"
)

// TestStudyOverRealHTTP runs the live-check stage of the study through
// a real HTTP server and TCP sockets — the same state machine the
// in-process transport uses, but exercised end-to-end through
// net/http's server, dialer, and TLS stack. The two paths must agree.
func TestStudyOverRealHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-HTTP integration")
	}
	params := worldgen.DefaultParams().Scale(0.01) // ~100 links
	params.Seed = 11
	u := worldgen.Generate(params)

	srv := simweb.NewServer(u.World, simclock.StudyTime)
	srv.TimeoutHang = 1500 * time.Millisecond
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mkStudy := func(client *fetch.Client) *core.Study {
		cfg := core.DefaultConfig()
		cfg.SampleSize = 0
		cfg.CrawlArticles = 0
		cfg.Concurrency = 16
		return &core.Study{
			Config: cfg,
			Wiki:   u.Wiki,
			Arch:   u.Archive,
			Client: client,
			Ranks:  u.World,
		}
	}

	// Path A: in-process transport.
	inproc := mkStudy(fetch.New(simweb.NewTransport(u.World, simclock.StudyTime)))
	// Path B: real HTTP over loopback, with a dial timeout far below
	// the server's hang duration so simulated timeouts classify fast.
	real := mkStudy(fetch.New(srv.Transport(300*time.Millisecond),
		fetch.WithTimeout(2*time.Second)))

	ctx := context.Background()
	ra := &core.Report{Config: inproc.Config, Records: inproc.Collect()}
	if err := inproc.LiveCheck(ctx, ra); err != nil {
		t.Fatal(err)
	}
	rb := &core.Report{Config: real.Config, Records: ra.Records}
	if err := real.LiveCheck(ctx, rb); err != nil {
		t.Fatal(err)
	}

	if ra.LiveBreakdown.Total() != rb.LiveBreakdown.Total() {
		t.Fatalf("totals differ: %d vs %d", ra.LiveBreakdown.Total(), rb.LiveBreakdown.Total())
	}
	for _, cat := range ra.LiveBreakdown.Categories() {
		a, b := ra.LiveBreakdown.Count(cat), rb.LiveBreakdown.Count(cat)
		if a != b {
			t.Errorf("category %q differs between transports: in-process %d, real HTTP %d", cat, a, b)
		}
	}
	// Soft-404 verdicts agree too.
	if math.Abs(float64(ra.NumFunctional-rb.NumFunctional)) > 0 {
		t.Errorf("functional counts differ: %d vs %d", ra.NumFunctional, rb.NumFunctional)
	}
}

// TestRealHTTPBehaviours spot-checks individual HTTP behaviours over
// real sockets: virtual hosting, redirects with Location headers, TLS,
// DNS failures from the dialer, and per-request day override.
func TestRealHTTPBehaviours(t *testing.T) {
	world := simweb.NewWorld()
	created := simclock.FromDate(2008, 1, 1)
	site := world.AddSite("vh1.simtest", created)
	site.AddPage("/page.html", created)
	pg := site.AddPage("/old.html", created)
	pg.MovedAt = created.Add(100)
	pg.NewPath = "/new.html"
	pg.RedirectFrom = created.Add(100)
	site.AddPage("/new.html", created.Add(100))
	world.AddSite("vh2.simtest", created)
	dead := world.AddSite("gone.simtest", created)
	dead.DNSDiesAt = created.Add(10)

	srv := simweb.NewServer(world, simclock.StudyTime)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Transport: srv.Transport(200 * time.Millisecond)}

	// Virtual hosting: two hosts answer differently.
	b1 := get(t, client, "http://vh1.simtest/page.html", 200)
	b2 := get(t, client, "http://vh2.simtest/", 200)
	if b1 == b2 {
		t.Error("virtual hosts served identical bodies")
	}

	// Redirect chain over real HTTP.
	resp, err := client.Get("http://vh1.simtest/old.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasSuffix(resp.Request.URL.Path, "/new.html") {
		t.Errorf("redirect landed at %v (%d)", resp.Request.URL, resp.StatusCode)
	}

	// HTTPS with the self-signed simulation certificate.
	get(t, client, "https://vh1.simtest/page.html", 200)

	// DNS-dead host fails in the dialer.
	if _, err := client.Get("http://gone.simtest/"); err == nil {
		t.Error("DNS-dead host should not resolve")
	}
	if _, err := client.Get("http://unknown.simtest/"); err == nil {
		t.Error("unknown host should not resolve")
	}

	// Per-request day override: before the move, /old.html worked.
	req, _ := http.NewRequest(http.MethodGet, "http://vh1.simtest/old.html", nil)
	req.Header.Set(simweb.DayHeader, "1461") // 2008-01-02
	resp2, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 || resp2.Request.URL.Path != "/old.html" {
		t.Errorf("day override: got %d at %v", resp2.StatusCode, resp2.Request.URL)
	}
}

func get(t *testing.T, c *http.Client, url string, wantStatus int) string {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestFacadeRun exercises the one-call public API.
func TestFacadeRun(t *testing.T) {
	report, err := Run(Options{Scale: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if report.N() == 0 {
		t.Fatal("empty report")
	}
	if report.LiveBreakdown.Total() != report.N() {
		t.Error("breakdown total mismatch")
	}
	if !strings.Contains(report.RenderComparison(), "Paper vs. measured") {
		t.Error("comparison missing")
	}
}
