// Command iabot reports on the bots' behaviour inside a generated
// universe: the IABot timeline statistics from generation, and —
// optionally — a WaybackMedic intervention over the marked links
// (§4.1), with and without the paper's §4.2 validated-redirect rescue.
//
// Usage:
//
//	iabot [-scale f] [-seed n] [-medic]
package main

import (
	"flag"
	"fmt"
	"time"

	"permadead/internal/ablation"
	"permadead/internal/worldgen"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.1, "universe scale")
		seed  = flag.Int64("seed", 1, "generation seed")
		medic = flag.Bool("medic", false, "also run the WaybackMedic experiment")
	)
	flag.Parse()

	params := worldgen.DefaultParams().Scale(*scale)
	params.Seed = *seed
	start := time.Now()
	u := worldgen.Generate(params)
	fmt.Printf("generated in %.1fs\n\n", time.Since(start).Seconds())

	st := u.Bot.Stats()
	fmt.Println("InternetArchiveBot timeline statistics")
	fmt.Println("======================================")
	fmt.Printf("articles scanned        %d\n", st.ArticlesScanned)
	fmt.Printf("articles edited         %d\n", st.ArticlesEdited)
	fmt.Printf("links checked           %d\n", st.LinksChecked)
	fmt.Printf("links alive             %d\n", st.LinksAlive)
	fmt.Printf("links broken            %d\n", st.LinksBroken)
	fmt.Printf("patched with copies     %d\n", st.Patched)
	fmt.Printf("marked permanently dead %d\n", st.MarkedDead)
	fmt.Printf("availability timeouts   %d\n", st.AvailabilityTimeouts)
	fmt.Printf("dead links skipped      %d (never re-checked)\n", st.SkippedDead)

	if !*medic {
		return
	}

	fmt.Println("\nWaybackMedic intervention (§4.1)")
	fmt.Println("================================")
	start = time.Now()
	res := ablation.MedicExperiment(u.Wiki, u.Archive, u.Params.StudyTime)
	fmt.Printf("ran in %.1fs\n", time.Since(start).Seconds())
	fmt.Printf("dead links examined     %d\n", res.Basic.DeadLinksSeen)
	fmt.Printf("rescued (untimed lookup)        %d\n", res.Basic.Patched)
	fmt.Printf("rescued (+validated redirects)  %d + %d redirect copies\n",
		res.WithRedirects.Patched, res.WithRedirects.RedirectPatched)
	fmt.Printf("still unfixable                 %d\n", res.WithRedirects.Unfixable)
}
