// Command inspect examines a saved universe ('worldgen -save'): list
// articles in the permanently-dead tracking category, print an
// article's wikitext and its links' edit-history facts, or trace one
// URL across all three substrates — the live web over time, the wiki,
// and the archive.
//
// Usage:
//
//	inspect -load u.gob -category
//	inspect -load u.gob -article "Some Title"
//	inspect -load u.gob -url http://host/path.html
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"permadead/internal/fetch"
	"permadead/internal/iabot"
	"permadead/internal/persist"
	"permadead/internal/simclock"
	"permadead/internal/simweb"
	"permadead/internal/wikimedia"
)

func main() {
	var (
		load     = flag.String("load", "", "universe file saved by 'worldgen -save' (required)")
		paged    = flag.Bool("universe.paged", true, "mmap a paged (format v4) universe file and read it page-on-demand; =false reads the file fully into memory")
		category = flag.Bool("category", false, "list articles in the permanently-dead tracking category")
		article  = flag.String("article", "", "print an article's wikitext and link histories")
		url      = flag.String("url", "", "trace one URL across the web, wiki, and archive")
	)
	flag.Parse()

	if *load == "" {
		fmt.Fprintln(os.Stderr, "inspect: -load is required")
		flag.Usage()
		os.Exit(2)
	}
	b, err := openUniverse(*load, *paged)
	if err != nil {
		fail(err)
	}
	defer b.Close()

	switch {
	case *category:
		titles := b.Wiki.InCategory(iabot.Category)
		fmt.Printf("%d articles in [[Category:%s]]:\n", len(titles), iabot.Category)
		for _, t := range titles {
			fmt.Println(" ", t)
		}
	case *article != "":
		showArticle(b, *article)
	case *url != "":
		traceURL(b, *url)
	default:
		fmt.Printf("universe: %d sites, %d articles, %d snapshots\n",
			b.World.Sites(), b.Wiki.Len(), b.Archive.TotalSnapshots())
		fmt.Println("use -category, -article, or -url to inspect")
	}
}

func showArticle(b *persist.Bundle, title string) {
	a := b.Wiki.Article(title)
	if a == nil {
		fail(fmt.Errorf("no article %q", title))
	}
	cur := a.Current()
	fmt.Printf("%s — %d revisions, last edited %s by %s\n\n",
		title, len(a.Revisions), cur.Day, cur.User)
	fmt.Println(cur.Text)
	fmt.Println("\nlink histories:")
	for _, u := range cur.Doc().ExternalURLs() {
		h, ok := b.Wiki.HistoryOf(title, u)
		if !ok {
			continue
		}
		fmt.Printf("  %s\n    added %s by %s", u, h.Added, h.AddedBy)
		if h.MarkedDead.Valid() {
			fmt.Printf("; marked dead %s by %s", h.MarkedDead, h.MarkedDeadBy)
		}
		if h.Patched {
			fmt.Printf("; patched with %s", h.ArchiveURL)
		}
		fmt.Println()
	}
}

func traceURL(b *persist.Bundle, url string) {
	fmt.Printf("trace: %s\n\n", url)

	// Live-web status over the years.
	fmt.Println("live web:")
	ctx := context.Background()
	for year := 2008; year <= 2022; year += 2 {
		day := simclock.FromDate(year, 3, 15)
		client := fetch.New(simweb.NewTransport(b.World, day))
		res := client.Fetch(ctx, url)
		fmt.Printf("  %d: %-12s", year, res.Category)
		if res.FinalStatus != 0 {
			fmt.Printf(" (initial %d, final %d)", res.InitialStatus, res.FinalStatus)
		}
		fmt.Println()
	}

	// Archive captures.
	snaps := b.Archive.Snapshots(url)
	fmt.Printf("\narchive: %d captures\n", len(snaps))
	for _, s := range snaps {
		fmt.Printf("  %s  initial %d final %d", s.Day, s.InitialStatus, s.FinalStatus)
		if s.RedirectTo != "" {
			fmt.Printf("  → %s", s.RedirectTo)
		}
		fmt.Println()
	}
	fmt.Printf("archived 200-status neighbours: %d in directory, %d on hostname\n",
		b.Archive.CountInDirectory(url), b.Archive.CountOnHostname(url))

	// Wiki appearances.
	fmt.Println("\nwiki:")
	found := false
	b.Wiki.EachArticle(func(a *wikimedia.Article) {
		h, ok := b.Wiki.HistoryOf(a.Title, url)
		if !ok {
			return
		}
		found = true
		fmt.Printf("  cited in %q: added %s by %s", a.Title, h.Added, h.AddedBy)
		if h.MarkedDead.Valid() {
			fmt.Printf("; marked dead %s by %s (bot=%q)", h.MarkedDead, h.MarkedDeadBy, h.DeadLinkBot)
		}
		fmt.Println()
	})
	if !found {
		fmt.Println("  not cited in any article")
	}
}

// openUniverse loads a saved universe. Paged (format v4) files are
// mmap'd and read page-on-demand — inspecting one article or URL
// touches only its pages — unless -universe.paged=false forces a full
// read; gob (v3) files always load fully.
func openUniverse(path string, paged bool) (*persist.Bundle, error) {
	if paged {
		return persist.Open(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return persist.Load(f)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "inspect: %v\n", err)
	os.Exit(1)
}
