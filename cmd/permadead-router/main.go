// Command permadead-router fronts a fleet of permadeadd shards: it
// owns the consistent-hash ring over registrable domains, proxies each
// single-link verdict to the owning shard, splits batch requests by
// owner and re-merges the streamed lines in input order, and
// scatter-gathers population queries across every shard — degrading to
// flagged partial results (with Retry-After) when a shard is down
// instead of erroring or hanging.
//
// Usage:
//
//	permadead-router -members s1=127.0.0.1:9001,s2=127.0.0.1:9002 \
//	                 [-addr host:port] [-vnodes n] [-shard-timeout d]
//
// Member names must match each shard's -shard-name; the shards must
// have been started with the same member list (the ring is rebuilt
// identically everywhere from the names alone). Runtime rebalances go
// through POST /admin/rebalance {"domain": ..., "to": ...}.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"permadead/internal/shard"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		members      = flag.String("members", "", "comma-separated name=host:port fleet members, in ring order")
		vnodes       = flag.Int("vnodes", 0, "consistent-hash virtual nodes per member (0 = default)")
		shardTimeout = flag.Duration("shard-timeout", 15*time.Second, "per-shard deadline on proxied and scattered requests")
		healthEvery  = flag.Duration("health-interval", time.Second, "shard /healthz polling cadence")
		retryAfter   = flag.Int("retry-after", 2, "Retry-After seconds advertised on degraded responses")
		maxBatch     = flag.Int("max-batch", 10000, "max links per /v1/classify/batch request")
		drainWait    = flag.Duration("drain-timeout", 5*time.Second, "rebalance bound on draining the old owner's in-flight range")
	)
	flag.Parse()

	fleet, err := parseMembers(*members)
	if err != nil {
		fatal(err)
	}
	r, err := shard.NewRouter(shard.RouterConfig{
		Members:        fleet,
		VNodes:         *vnodes,
		ShardTimeout:   *shardTimeout,
		HealthInterval: *healthEvery,
		RetryAfterSec:  *retryAfter,
		MaxBatchLinks:  *maxBatch,
		DrainTimeout:   *drainWait,
	})
	if err != nil {
		fatal(err)
	}
	defer r.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()
	names := make([]string, len(fleet))
	for i, m := range fleet {
		names[i] = m.Name
	}
	fmt.Fprintf(os.Stderr, "permadead-router: routing for [%s] on http://%s\n",
		strings.Join(names, " "), ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "permadead-router: %v received, shutting down...\n", sig)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx) //nolint:errcheck // the router holds no state worth a forced drain
}

// parseMembers decodes "-members s1=host:port,s2=host:port".
func parseMembers(spec string) ([]shard.Member, error) {
	if spec == "" {
		return nil, fmt.Errorf("-members is required (name=host:port, comma-separated)")
	}
	var out []shard.Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, base, ok := strings.Cut(part, "=")
		if !ok || name == "" || base == "" {
			return nil, fmt.Errorf("malformed member %q, want name=host:port", part)
		}
		out = append(out, shard.Member{Name: name, Base: base})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "permadead-router: %v\n", err)
	os.Exit(1)
}
