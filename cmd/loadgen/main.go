// Command loadgen exercises a running permadeadd with N requests from
// C concurrent clients and reports throughput and latency quantiles.
// It discovers target URLs from the server's own /v1/sample endpoint,
// then drives one of two workloads over a bounded URL pool:
//
//	-workload mixed   spread single-link GETs across /v1/classify,
//	                  /v1/status, and /v1/availability (the default)
//	-workload avail   availability-only GETs — the archive-lookup hot
//	                  path in isolation, which is what the federation
//	                  smoke compares (hedged multi-archive p99 vs.
//	                  single-archive p99) without classify noise
//	-workload batch   POST NDJSON batches of -batch-size links to
//	                  /v1/classify/batch, counting streamed lines
//	-workload soak    drive the mixed request shape for -duration
//	                  (ignoring -n), printing a line every -report
//	                  interval with window p50/p99, cumulative
//	                  throughput, and the server's RSS from /metrics —
//	                  the steady-state memory check for the paged
//	                  universe store
//	-workload fleet   classify-only GETs (the shard-scaling measure:
//	                  every request routes to exactly one shard) plus
//	                  -scatter scatter-gather /v1/sample probes, with
//	                  separate bench lines (<Name>Classify,
//	                  <Name>Scatter) so a smoke harness can compare
//	                  classify throughput across fleet sizes and bound
//	                  scatter p99
//	-workload stream  open -c SSE subscribers on /v1/stream/verdicts,
//	                  watch -sample articles, then drive the sim clock
//	                  forward -tick-days in -tick-step increments so
//	                  the monitor's re-checks produce verdict flips;
//	                  report events/s, delivery p99 (now minus the
//	                  event's emission stamp), and dropped subscribers
//
// URL selection is uniform round-robin by default; -zipf s (s > 1)
// draws from a zipf distribution instead, so a few hot links dominate
// — the shape that exercises the response cache and the singleflight
// group rather than the classify pool.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8080 [-n 200] [-c 16] [-sample 64]
//	        [-workload mixed|batch] [-batch-size 100] [-zipf 1.2]
//	        [-p99-max 5s] [-bench Name]
//
// -bench Name appends a go-bench-format line to stdout
// (BenchmarkName <requests> <ns/op> ns/op ...) that cmd/benchjson can
// parse into a JSON artifact. Exit status is 1 if any request got a
// 5xx, a transport error, or a server-fault NDJSON line, if nothing
// succeeded, or if -p99-max is set and p99 latency exceeds it — CI
// smoke tests assert on the exit code alone.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

var endpoints = []string{"/v1/classify", "/v1/status", "/v1/availability"}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "permadeadd address (host:port)")
		n         = flag.Int("n", 200, "total number of requests (each batch POST counts as one)")
		c         = flag.Int("c", 16, "concurrent clients")
		sample    = flag.Int("sample", 64, "URL pool size (smaller pools repeat URLs and hit the cache)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		workload  = flag.String("workload", "mixed", "workload shape: mixed (single-link GETs), avail (availability-only GETs), batch (NDJSON POSTs), soak (duration-based mixed load), or stream (SSE verdict subscribers)")
		duration  = flag.Duration("duration", 30*time.Second, "how long the soak workload runs")
		report    = flag.Duration("report", 5*time.Second, "soak progress-line interval")
		batchSize = flag.Int("batch-size", 100, "links per /v1/classify/batch POST (batch workload)")
		scatter   = flag.Int("scatter", 50, "scatter-gather /v1/sample probes after the classify phase (fleet workload)")
		tickDays  = flag.Int("tick-days", 120, "total sim days the stream workload advances")
		tickStep  = flag.Int("tick-step", 15, "sim days per /v1/sim/tick POST (stream workload)")
		zipfS     = flag.Float64("zipf", 0, "zipf skew s for URL selection (> 1; 0 = uniform round-robin)")
		seed      = flag.Int64("seed", 1, "zipf draw seed")
		p99Max    = flag.Duration("p99-max", 0, "fail (exit 1) if p99 latency exceeds this (0 = no bound)")
		benchName = flag.String("bench", "", "emit a go-bench-format result line under this name (no '-')")
	)
	flag.Parse()
	if *n < 1 || *c < 1 || *sample < 1 || *batchSize < 1 {
		fatal(fmt.Errorf("-n, -c, -sample, and -batch-size must all be >= 1"))
	}
	switch *workload {
	case "mixed", "avail", "batch", "soak", "stream", "fleet":
	default:
		fatal(fmt.Errorf("-workload must be 'mixed', 'avail', 'batch', 'soak', 'stream', or 'fleet', got %q", *workload))
	}
	if *zipfS != 0 && *zipfS <= 1 {
		fatal(fmt.Errorf("-zipf needs s > 1 (got %v)", *zipfS))
	}
	if strings.Contains(*benchName, "-") {
		fatal(fmt.Errorf("-bench name %q must not contain '-' (bench parsers treat it as a CPU suffix)", *benchName))
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout}

	if *workload == "stream" {
		runStream(client, base, streamConfig{
			Subscribers: *c, Articles: *sample,
			TickDays: *tickDays, TickStep: *tickStep,
			P99Max: *p99Max, BenchName: *benchName,
		})
		return
	}

	pool, err := fetchSample(client, base, *sample)
	if err != nil {
		fatal(err)
	}

	if *workload == "fleet" {
		runFleet(client, base, pool, fleetConfig{
			N: *n, Clients: *c, Scatter: *scatter, ScatterN: *sample,
			ZipfS: *zipfS, Seed: *seed, P99Max: *p99Max, BenchName: *benchName,
		})
		return
	}

	if *workload == "soak" {
		runSoak(client, base, pool, soakConfig{
			Clients: *c, Duration: *duration, Report: *report,
			ZipfS: *zipfS, Seed: *seed, P99Max: *p99Max, BenchName: *benchName,
		})
		return
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d URLs in pool, firing %d %s requests from %d clients\n",
		len(pool), *n, *workload, *c)

	eps := endpoints
	if *workload == "avail" {
		eps = []string{"/v1/availability"}
	}

	var (
		next       atomic.Int64
		errors     atomic.Int64
		lines      atomic.Int64 // NDJSON verdict lines (batch workload)
		faultLines atomic.Int64 // NDJSON server-fault lines (batch workload)
		mu         sync.Mutex
		latencies  []time.Duration
		byClass    = map[string]*atomic.Int64{"2xx": {}, "3xx": {}, "4xx": {}, "5xx": {}}
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Each worker draws from its own zipf stream: rand.Zipf is
			// not safe for concurrent use.
			pick := uniformPicker(len(pool))
			if *zipfS != 0 {
				pick = zipfPicker(*zipfS, len(pool), *seed+int64(worker))
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				var (
					d      time.Duration
					status int
					err    error
				)
				if *workload == "batch" {
					var got, faults int64
					d, status, got, faults, err = postBatch(client, base, pool, pick, *batchSize)
					lines.Add(got)
					faultLines.Add(faults)
				} else {
					target := base + eps[i%len(eps)] + "?url=" + url.QueryEscape(pool[pick(i)])
					d, status, err = get(client, target)
				}
				if err != nil {
					errors.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
					continue
				}
				byClass[statusClass(status)].Add(1)
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ok := byClass["2xx"].Load() + byClass["3xx"].Load()
	fmt.Printf("requests:   %d ok, %d 4xx, %d 5xx, %d transport errors\n",
		ok, byClass["4xx"].Load(), byClass["5xx"].Load(), errors.Load())
	if *workload == "batch" {
		fmt.Printf("ndjson:     %d lines streamed, %d server-fault lines\n", lines.Load(), faultLines.Load())
	}
	fmt.Printf("throughput: %.1f req/s (%d requests in %.2fs)\n",
		float64(len(latencies))/elapsed.Seconds(), len(latencies), elapsed.Seconds())
	var p99 time.Duration
	if len(latencies) > 0 {
		p99 = quantile(latencies, 0.99)
		fmt.Printf("latency:    p50 %s  p90 %s  p99 %s  max %s\n",
			quantile(latencies, 0.50), quantile(latencies, 0.90),
			p99, latencies[len(latencies)-1])
	}

	if *benchName != "" && len(latencies) > 0 {
		// Go bench format so cmd/benchjson can ingest it. One "op" is
		// one request; extra value/unit pairs carry the smoke's SLOs.
		mean := elapsed.Nanoseconds() / int64(len(latencies))
		fmt.Printf("Benchmark%s %d %d ns/op %.3f p99ms %.1f req/s %d lines\n",
			*benchName, len(latencies), mean,
			float64(p99.Microseconds())/1000, float64(len(latencies))/elapsed.Seconds(), lines.Load())
	}

	switch {
	case byClass["5xx"].Load() > 0 || errors.Load() > 0 || faultLines.Load() > 0 || ok == 0:
		os.Exit(1)
	case *p99Max > 0 && p99 > *p99Max:
		fmt.Fprintf(os.Stderr, "loadgen: p99 %s exceeds bound %s\n", p99, *p99Max)
		os.Exit(1)
	}
}

type fleetConfig struct {
	N         int // classify GETs
	Clients   int
	Scatter   int // scatter-gather /v1/sample probes
	ScatterN  int // sample size each probe asks for
	ZipfS     float64
	Seed      int64
	P99Max    time.Duration
	BenchName string
}

// runFleet is the shard-scaling workload. Phase one fires cfg.N
// /v1/classify GETs from cfg.Clients workers — classification routes
// to exactly one shard, so fleet throughput here is the near-linear
// scaling claim a shard smoke compares across 1, 2, and 4 shards.
// Phase two fires cfg.Scatter /v1/sample probes, each of which
// scatter-gathers every shard, and reports their p99 — the cost of the
// fan-out path. Both phases emit separate bench lines
// (<Name>Classify, <Name>Scatter) for cmd/benchjson.
func runFleet(client *http.Client, base string, pool []string, cfg fleetConfig) {
	fmt.Fprintf(os.Stderr, "loadgen: fleet workload: %d classify GETs from %d clients, then %d scatter probes\n",
		cfg.N, cfg.Clients, cfg.Scatter)

	var (
		next      atomic.Int64
		errors    atomic.Int64
		fiveXX    atomic.Int64
		okCount   atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			pick := uniformPicker(len(pool))
			if cfg.ZipfS != 0 {
				pick = zipfPicker(cfg.ZipfS, len(pool), cfg.Seed+int64(worker))
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.N {
					return
				}
				target := base + "/v1/classify?url=" + url.QueryEscape(pool[pick(i)])
				d, status, err := get(client, target)
				switch {
				case err != nil:
					errors.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
					continue
				case status >= 500:
					fiveXX.Add(1)
				case status < 400:
					okCount.Add(1)
				}
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	classifyElapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	classifyRPS := float64(len(latencies)) / classifyElapsed.Seconds()
	fmt.Printf("classify:   %d ok, %d 5xx, %d transport errors\n", okCount.Load(), fiveXX.Load(), errors.Load())
	fmt.Printf("throughput: %.1f req/s (%d requests in %.2fs)\n", classifyRPS, len(latencies), classifyElapsed.Seconds())
	var classifyP99 time.Duration
	if len(latencies) > 0 {
		classifyP99 = quantile(latencies, 0.99)
		fmt.Printf("latency:    p50 %s  p90 %s  p99 %s  max %s\n",
			quantile(latencies, 0.50), quantile(latencies, 0.90),
			classifyP99, latencies[len(latencies)-1])
	}

	// Scatter phase: sequential probes measure the fan-out path alone,
	// not its behavior under self-inflicted contention.
	var scatterLat []time.Duration
	scatterStart := time.Now()
	for i := 0; i < cfg.Scatter; i++ {
		d, status, err := get(client, fmt.Sprintf("%s/v1/sample?n=%d", base, cfg.ScatterN))
		switch {
		case err != nil:
			errors.Add(1)
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			continue
		case status >= 500:
			fiveXX.Add(1)
		case status < 400:
			okCount.Add(1)
		}
		scatterLat = append(scatterLat, d)
	}
	scatterElapsed := time.Since(scatterStart)
	sort.Slice(scatterLat, func(i, j int) bool { return scatterLat[i] < scatterLat[j] })
	var scatterP99 time.Duration
	if len(scatterLat) > 0 {
		scatterP99 = quantile(scatterLat, 0.99)
		fmt.Printf("scatter:    %d probes, p50 %s  p99 %s  max %s\n",
			len(scatterLat), quantile(scatterLat, 0.50), scatterP99, scatterLat[len(scatterLat)-1])
	}

	if cfg.BenchName != "" && len(latencies) > 0 {
		mean := classifyElapsed.Nanoseconds() / int64(len(latencies))
		fmt.Printf("Benchmark%sClassify %d %d ns/op %.3f p99ms %.1f req/s\n",
			cfg.BenchName, len(latencies), mean,
			float64(classifyP99.Microseconds())/1000, classifyRPS)
	}
	if cfg.BenchName != "" && len(scatterLat) > 0 {
		mean := scatterElapsed.Nanoseconds() / int64(len(scatterLat))
		fmt.Printf("Benchmark%sScatter %d %d ns/op %.3f p99ms %.1f req/s\n",
			cfg.BenchName, len(scatterLat), mean,
			float64(scatterP99.Microseconds())/1000, float64(len(scatterLat))/scatterElapsed.Seconds())
	}

	switch {
	case fiveXX.Load() > 0 || errors.Load() > 0 || okCount.Load() == 0:
		os.Exit(1)
	case cfg.P99Max > 0 && classifyP99 > cfg.P99Max:
		fmt.Fprintf(os.Stderr, "loadgen: classify p99 %s exceeds bound %s\n", classifyP99, cfg.P99Max)
		os.Exit(1)
	}
}

type soakConfig struct {
	Clients   int
	Duration  time.Duration
	Report    time.Duration
	ZipfS     float64
	Seed      int64
	P99Max    time.Duration
	BenchName string
}

// runSoak drives the mixed single-link request shape for a fixed
// duration instead of a fixed count, reporting a progress line every
// cfg.Report interval: p50/p99 over that window, cumulative
// throughput, and the server's resident set size scraped from
// /metrics. A flat RSS trend across a long soak is the observable form
// of the paged store's O(working set) memory claim.
func runSoak(client *http.Client, base string, pool []string, cfg soakConfig) {
	fmt.Fprintf(os.Stderr, "loadgen: %d URLs in pool, soaking %s from %d clients (report every %s)\n",
		len(pool), cfg.Duration, cfg.Clients, cfg.Report)

	var (
		errors  atomic.Int64
		fiveXX  atomic.Int64
		okCount atomic.Int64

		mu     sync.Mutex
		all    []time.Duration // cumulative, for the final summary
		window []time.Duration // since the last report line
	)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			pick := uniformPicker(len(pool))
			if cfg.ZipfS != 0 {
				pick = zipfPicker(cfg.ZipfS, len(pool), cfg.Seed+int64(worker))
			}
			for i := worker; time.Now().Before(deadline); i++ {
				target := base + endpoints[i%len(endpoints)] + "?url=" + url.QueryEscape(pool[pick(i)])
				d, status, err := get(client, target)
				switch {
				case err != nil:
					errors.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
					continue
				case status >= 500:
					fiveXX.Add(1)
				case status < 400:
					okCount.Add(1)
				}
				mu.Lock()
				all = append(all, d)
				window = append(window, d)
				mu.Unlock()
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	ticker := time.NewTicker(cfg.Report)
	defer ticker.Stop()
	for running := true; running; {
		select {
		case <-ticker.C:
		case <-done:
			running = false
		}
		mu.Lock()
		win := window
		window = nil
		total := len(all)
		mu.Unlock()
		if len(win) == 0 && running {
			continue
		}
		sort.Slice(win, func(i, j int) bool { return win[i] < win[j] })
		elapsed := time.Since(start).Seconds()
		line := fmt.Sprintf("soak t=%4.0fs  reqs=%d (%.1f req/s)", elapsed, total, float64(total)/elapsed)
		if len(win) > 0 {
			line += fmt.Sprintf("  window p50=%s p99=%s", quantile(win, 0.50), quantile(win, 0.99))
		}
		if rss := serverRSS(client, base); rss > 0 {
			line += fmt.Sprintf("  server-rss=%.1fMB", float64(rss)/(1<<20))
		}
		fmt.Println(line)
	}
	elapsed := time.Since(start)

	mu.Lock()
	latencies := all
	mu.Unlock()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("requests:   %d ok, %d 5xx, %d transport errors\n",
		okCount.Load(), fiveXX.Load(), errors.Load())
	fmt.Printf("throughput: %.1f req/s (%d requests in %.2fs)\n",
		float64(len(latencies))/elapsed.Seconds(), len(latencies), elapsed.Seconds())
	var p99 time.Duration
	if len(latencies) > 0 {
		p99 = quantile(latencies, 0.99)
		fmt.Printf("latency:    p50 %s  p90 %s  p99 %s  max %s\n",
			quantile(latencies, 0.50), quantile(latencies, 0.90),
			p99, latencies[len(latencies)-1])
	}
	if cfg.BenchName != "" && len(latencies) > 0 {
		mean := elapsed.Nanoseconds() / int64(len(latencies))
		rssMB := float64(serverRSS(client, base)) / (1 << 20)
		fmt.Printf("Benchmark%s %d %d ns/op %.3f p99ms %.1f req/s %.1f rss-mb\n",
			cfg.BenchName, len(latencies), mean,
			float64(p99.Microseconds())/1000, float64(len(latencies))/elapsed.Seconds(), rssMB)
	}
	switch {
	case fiveXX.Load() > 0 || errors.Load() > 0 || okCount.Load() == 0:
		os.Exit(1)
	case cfg.P99Max > 0 && p99 > cfg.P99Max:
		fmt.Fprintf(os.Stderr, "loadgen: p99 %s exceeds bound %s\n", p99, cfg.P99Max)
		os.Exit(1)
	}
}

type streamConfig struct {
	Subscribers int
	Articles    int
	TickDays    int
	TickStep    int
	P99Max      time.Duration
	BenchName   string
}

// runStream measures verdict-feed fan-out: it subscribes cfg.Subscribers
// SSE clients to /v1/stream/verdicts, watches the articles citing the
// first cfg.Articles sampled links, then drives the sim clock forward so
// fault windows open and close and the monitor's re-checks journal
// verdict flips. Every subscriber should see every flip; delivery
// latency is receipt time minus the event's emission stamp (live events
// only — replayed events carry no stamp and are excluded). The run
// fails (exit 1) on any transport error, if any subscriber missed
// events, or if no live events arrived at all.
func runStream(client *http.Client, base string, cfg streamConfig) {
	// Watch the sampled articles. Article titles ride along with the
	// sample when asked for.
	resp, err := client.Get(fmt.Sprintf("%s/v1/sample?n=%d&articles=1", base, cfg.Articles))
	if err != nil {
		fatal(fmt.Errorf("fetching /v1/sample: %w", err))
	}
	var sr struct {
		Articles []string `json:"articles"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil {
		fatal(fmt.Errorf("decoding /v1/sample: %w", err))
	}
	titles := dedup(sr.Articles)
	if len(titles) == 0 {
		fatal(fmt.Errorf("/v1/sample returned no article titles (monitor disabled?)"))
	}
	var wr struct {
		WatchedLinks int `json:"watched_links"`
	}
	if err := postJSON(client, base+"/v1/watch", map[string]any{"articles": titles}, &wr); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: watching %d links across %d articles, %d subscribers, ticking %d days by %d\n",
		wr.WatchedLinks, len(titles), cfg.Subscribers, cfg.TickDays, cfg.TickStep)

	// SSE connections outlive any per-request timeout: dedicated client.
	streamClient := &http.Client{}
	// The driver polls subscriber progress while the subscriber
	// goroutines advance it, hence the atomics; err is written once
	// before failed flips and only read after wg.Wait.
	type subResult struct {
		events  atomic.Int64 // live verdict frames received
		dropped atomic.Bool  // terminal "dropped" frame seen
		lastSeq atomic.Int64
		failed  atomic.Bool
		err     error
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		results   = make([]subResult, cfg.Subscribers)
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Subscribers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fail := func(err error) {
				results[id].err = err
				results[id].failed.Store(true)
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stream/verdicts", nil)
			if err != nil {
				fail(err)
				return
			}
			resp, err := streamClient.Do(req)
			if err != nil {
				fail(fmt.Errorf("subscriber %d: %w", id, err))
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail(fmt.Errorf("subscriber %d: stream returned %d", id, resp.StatusCode))
				return
			}
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
			var event string
			for sc.Scan() {
				line := sc.Text()
				switch {
				case strings.HasPrefix(line, "event: "):
					event = line[7:]
				case strings.HasPrefix(line, "data: "):
					if event == "dropped" {
						results[id].dropped.Store(true)
						continue
					}
					var ev struct {
						Seq           int64 `json:"seq"`
						EmittedUnixNs int64 `json:"emitted_unix_ns"`
					}
					if json.Unmarshal([]byte(line[6:]), &ev) != nil {
						continue
					}
					results[id].lastSeq.Store(ev.Seq)
					if ev.EmittedUnixNs > 0 {
						results[id].events.Add(1)
						d := time.Duration(time.Now().UnixNano() - ev.EmittedUnixNs)
						mu.Lock()
						latencies = append(latencies, d)
						mu.Unlock()
					}
				case line == "":
					event = ""
				}
			}
			// Stream end is expected: the driver cancels ctx when done.
		}(i)
	}

	// Drive the clock. Each tick runs due re-checks synchronously, so
	// once the last tick returns, every flip has been journaled and
	// pushed into subscriber buffers.
	var finalSeq int64
	for spent := 0; spent < cfg.TickDays; spent += cfg.TickStep {
		var tr struct {
			Stats struct {
				JournalEntries int64 `json:"journal_entries"`
			} `json:"stats"`
		}
		if err := postJSON(client, base+"/v1/sim/tick", map[string]int{"days": cfg.TickStep}, &tr); err != nil {
			fatal(err)
		}
		finalSeq = tr.Stats.JournalEntries
	}

	// Give subscribers a bounded grace period to drain their buffers,
	// then cut the connections.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		caughtUp := true
		for i := range results {
			if !results[i].failed.Load() && !results[i].dropped.Load() && results[i].lastSeq.Load() < finalSeq {
				caughtUp = false
				break
			}
		}
		if caughtUp {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	elapsed := time.Since(start)

	var events, incomplete, droppedSubs int64
	for i := range results {
		if results[i].err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", results[i].err)
			incomplete++
			continue
		}
		events += results[i].events.Load()
		if results[i].dropped.Load() {
			droppedSubs++
		} else if last := results[i].lastSeq.Load(); last < finalSeq {
			fmt.Fprintf(os.Stderr, "loadgen: subscriber %d stopped at seq %d of %d\n", i, last, finalSeq)
			incomplete++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("stream:     %d flips journaled, %d live events across %d subscribers (%d dropped, %d incomplete)\n",
		finalSeq, events, cfg.Subscribers, droppedSubs, incomplete)
	fmt.Printf("throughput: %.1f events/s (%.2fs wall)\n", float64(events)/elapsed.Seconds(), elapsed.Seconds())
	var p99 time.Duration
	if len(latencies) > 0 {
		p99 = quantile(latencies, 0.99)
		fmt.Printf("delivery:   p50 %s  p90 %s  p99 %s  max %s\n",
			quantile(latencies, 0.50), quantile(latencies, 0.90),
			p99, latencies[len(latencies)-1])
	}
	if cfg.BenchName != "" && events > 0 {
		mean := elapsed.Nanoseconds() / events
		fmt.Printf("Benchmark%s %d %d ns/op %.3f p99ms %.1f ev/s %d dropped\n",
			cfg.BenchName, events, mean,
			float64(p99.Microseconds())/1000, float64(events)/elapsed.Seconds(), droppedSubs)
	}
	switch {
	case incomplete > 0 || events == 0 || finalSeq == 0:
		os.Exit(1)
	case cfg.P99Max > 0 && p99 > cfg.P99Max:
		fmt.Fprintf(os.Stderr, "loadgen: delivery p99 %s exceeds bound %s\n", p99, cfg.P99Max)
		os.Exit(1)
	}
}

// dedup preserves first-seen order.
func dedup(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// postJSON fires one JSON POST and decodes the response into out.
func postJSON(client *http.Client, target string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(target, "application/json", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("POST %s: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("POST %s returned %d: %s", target, resp.StatusCode, raw)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// serverRSS scrapes the target's resident set size from /metrics
// ("mem".rss_bytes), returning 0 if unavailable.
func serverRSS(client *http.Client, base string) uint64 {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var doc struct {
		Mem struct {
			RSSBytes uint64 `json:"rss_bytes"`
		} `json:"mem"`
	}
	if json.NewDecoder(resp.Body).Decode(&doc) != nil {
		return 0
	}
	return doc.Mem.RSSBytes
}

// uniformPicker spreads request i across the pool round-robin.
func uniformPicker(poolSize int) func(i int) int {
	return func(i int) int { return i % poolSize }
}

// zipfPicker draws pool indexes zipf-distributed with skew s: index 0
// is the hottest link, and for s around 1.1–1.5 a handful of links
// take most of the traffic — the cache/singleflight stress shape.
func zipfPicker(s float64, poolSize int, seed int64) func(i int) int {
	z := rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, uint64(poolSize-1))
	return func(int) int { return int(z.Uint64()) }
}

func get(client *http.Client, target string) (time.Duration, int, error) {
	t0 := time.Now()
	resp, err := client.Get(target)
	d := time.Since(t0)
	if err != nil {
		return d, 0, fmt.Errorf("%s: %w", target, err)
	}
	resp.Body.Close()
	return d, resp.StatusCode, nil
}

// postBatch fires one /v1/classify/batch POST of size links drawn via
// pick and consumes the NDJSON stream, reporting how many lines
// arrived and how many were server-fault error lines (client-shaped
// error lines — unknown links, say — don't fail the run; the server
// answered them correctly).
func postBatch(client *http.Client, base string, pool []string, pick func(i int) int, size int) (time.Duration, int, int64, int64, error) {
	urls := make([]string, size)
	for i := range urls {
		urls[i] = pool[pick(i)]
	}
	body, err := json.Marshal(map[string][]string{"urls": urls})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/classify/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return time.Since(t0), 0, 0, 0, fmt.Errorf("batch POST: %w", err)
	}
	defer resp.Body.Close()
	var got, faults int64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		got++
		var line struct {
			Error *struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if json.Unmarshal(sc.Bytes(), &line) == nil && line.Error != nil {
			switch line.Error.Code {
			case "internal", "encode", "deadline", "overloaded":
				faults++
			}
		}
	}
	d := time.Since(t0)
	if err := sc.Err(); err != nil {
		return d, resp.StatusCode, got, faults, fmt.Errorf("batch stream: %w", err)
	}
	if resp.StatusCode == http.StatusOK && got != int64(size) {
		return d, resp.StatusCode, got, faults, fmt.Errorf("batch stream truncated: %d of %d lines", got, size)
	}
	return d, resp.StatusCode, got, faults, nil
}

// fetchSample pulls up to n URLs from the server's sampled population.
func fetchSample(client *http.Client, base string, n int) ([]string, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/sample?n=%d", base, n))
	if err != nil {
		return nil, fmt.Errorf("fetching /v1/sample: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/sample returned %d", resp.StatusCode)
	}
	var sr struct {
		URLs []string `json:"urls"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decoding /v1/sample: %w", err)
	}
	if len(sr.URLs) == 0 {
		return nil, fmt.Errorf("/v1/sample returned no URLs")
	}
	return sr.URLs, nil
}

func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// quantile returns the q-th latency from an ascending-sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Microsecond)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}
