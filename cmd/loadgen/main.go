// Command loadgen exercises a running permadeadd with N requests from
// C concurrent clients and reports throughput and latency quantiles.
// It discovers target URLs from the server's own /v1/sample endpoint,
// then drives one of two workloads over a bounded URL pool:
//
//	-workload mixed   spread single-link GETs across /v1/classify,
//	                  /v1/status, and /v1/availability (the default)
//	-workload batch   POST NDJSON batches of -batch-size links to
//	                  /v1/classify/batch, counting streamed lines
//	-workload soak    drive the mixed request shape for -duration
//	                  (ignoring -n), printing a line every -report
//	                  interval with window p50/p99, cumulative
//	                  throughput, and the server's RSS from /metrics —
//	                  the steady-state memory check for the paged
//	                  universe store
//
// URL selection is uniform round-robin by default; -zipf s (s > 1)
// draws from a zipf distribution instead, so a few hot links dominate
// — the shape that exercises the response cache and the singleflight
// group rather than the classify pool.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8080 [-n 200] [-c 16] [-sample 64]
//	        [-workload mixed|batch] [-batch-size 100] [-zipf 1.2]
//	        [-p99-max 5s] [-bench Name]
//
// -bench Name appends a go-bench-format line to stdout
// (BenchmarkName <requests> <ns/op> ns/op ...) that cmd/benchjson can
// parse into a JSON artifact. Exit status is 1 if any request got a
// 5xx, a transport error, or a server-fault NDJSON line, if nothing
// succeeded, or if -p99-max is set and p99 latency exceeds it — CI
// smoke tests assert on the exit code alone.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

var endpoints = []string{"/v1/classify", "/v1/status", "/v1/availability"}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "permadeadd address (host:port)")
		n         = flag.Int("n", 200, "total number of requests (each batch POST counts as one)")
		c         = flag.Int("c", 16, "concurrent clients")
		sample    = flag.Int("sample", 64, "URL pool size (smaller pools repeat URLs and hit the cache)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		workload  = flag.String("workload", "mixed", "workload shape: mixed (single-link GETs), batch (NDJSON POSTs), or soak (duration-based mixed load)")
		duration  = flag.Duration("duration", 30*time.Second, "how long the soak workload runs")
		report    = flag.Duration("report", 5*time.Second, "soak progress-line interval")
		batchSize = flag.Int("batch-size", 100, "links per /v1/classify/batch POST (batch workload)")
		zipfS     = flag.Float64("zipf", 0, "zipf skew s for URL selection (> 1; 0 = uniform round-robin)")
		seed      = flag.Int64("seed", 1, "zipf draw seed")
		p99Max    = flag.Duration("p99-max", 0, "fail (exit 1) if p99 latency exceeds this (0 = no bound)")
		benchName = flag.String("bench", "", "emit a go-bench-format result line under this name (no '-')")
	)
	flag.Parse()
	if *n < 1 || *c < 1 || *sample < 1 || *batchSize < 1 {
		fatal(fmt.Errorf("-n, -c, -sample, and -batch-size must all be >= 1"))
	}
	if *workload != "mixed" && *workload != "batch" && *workload != "soak" {
		fatal(fmt.Errorf("-workload must be 'mixed', 'batch', or 'soak', got %q", *workload))
	}
	if *zipfS != 0 && *zipfS <= 1 {
		fatal(fmt.Errorf("-zipf needs s > 1 (got %v)", *zipfS))
	}
	if strings.Contains(*benchName, "-") {
		fatal(fmt.Errorf("-bench name %q must not contain '-' (bench parsers treat it as a CPU suffix)", *benchName))
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout}

	pool, err := fetchSample(client, base, *sample)
	if err != nil {
		fatal(err)
	}

	if *workload == "soak" {
		runSoak(client, base, pool, soakConfig{
			Clients: *c, Duration: *duration, Report: *report,
			ZipfS: *zipfS, Seed: *seed, P99Max: *p99Max, BenchName: *benchName,
		})
		return
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d URLs in pool, firing %d %s requests from %d clients\n",
		len(pool), *n, *workload, *c)

	var (
		next       atomic.Int64
		errors     atomic.Int64
		lines      atomic.Int64 // NDJSON verdict lines (batch workload)
		faultLines atomic.Int64 // NDJSON server-fault lines (batch workload)
		mu         sync.Mutex
		latencies  []time.Duration
		byClass    = map[string]*atomic.Int64{"2xx": {}, "3xx": {}, "4xx": {}, "5xx": {}}
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Each worker draws from its own zipf stream: rand.Zipf is
			// not safe for concurrent use.
			pick := uniformPicker(len(pool))
			if *zipfS != 0 {
				pick = zipfPicker(*zipfS, len(pool), *seed+int64(worker))
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				var (
					d      time.Duration
					status int
					err    error
				)
				if *workload == "batch" {
					var got, faults int64
					d, status, got, faults, err = postBatch(client, base, pool, pick, *batchSize)
					lines.Add(got)
					faultLines.Add(faults)
				} else {
					target := base + endpoints[i%len(endpoints)] + "?url=" + url.QueryEscape(pool[pick(i)])
					d, status, err = get(client, target)
				}
				if err != nil {
					errors.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
					continue
				}
				byClass[statusClass(status)].Add(1)
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ok := byClass["2xx"].Load() + byClass["3xx"].Load()
	fmt.Printf("requests:   %d ok, %d 4xx, %d 5xx, %d transport errors\n",
		ok, byClass["4xx"].Load(), byClass["5xx"].Load(), errors.Load())
	if *workload == "batch" {
		fmt.Printf("ndjson:     %d lines streamed, %d server-fault lines\n", lines.Load(), faultLines.Load())
	}
	fmt.Printf("throughput: %.1f req/s (%d requests in %.2fs)\n",
		float64(len(latencies))/elapsed.Seconds(), len(latencies), elapsed.Seconds())
	var p99 time.Duration
	if len(latencies) > 0 {
		p99 = quantile(latencies, 0.99)
		fmt.Printf("latency:    p50 %s  p90 %s  p99 %s  max %s\n",
			quantile(latencies, 0.50), quantile(latencies, 0.90),
			p99, latencies[len(latencies)-1])
	}

	if *benchName != "" && len(latencies) > 0 {
		// Go bench format so cmd/benchjson can ingest it. One "op" is
		// one request; extra value/unit pairs carry the smoke's SLOs.
		mean := elapsed.Nanoseconds() / int64(len(latencies))
		fmt.Printf("Benchmark%s %d %d ns/op %.3f p99ms %.1f req/s %d lines\n",
			*benchName, len(latencies), mean,
			float64(p99.Microseconds())/1000, float64(len(latencies))/elapsed.Seconds(), lines.Load())
	}

	switch {
	case byClass["5xx"].Load() > 0 || errors.Load() > 0 || faultLines.Load() > 0 || ok == 0:
		os.Exit(1)
	case *p99Max > 0 && p99 > *p99Max:
		fmt.Fprintf(os.Stderr, "loadgen: p99 %s exceeds bound %s\n", p99, *p99Max)
		os.Exit(1)
	}
}

type soakConfig struct {
	Clients   int
	Duration  time.Duration
	Report    time.Duration
	ZipfS     float64
	Seed      int64
	P99Max    time.Duration
	BenchName string
}

// runSoak drives the mixed single-link request shape for a fixed
// duration instead of a fixed count, reporting a progress line every
// cfg.Report interval: p50/p99 over that window, cumulative
// throughput, and the server's resident set size scraped from
// /metrics. A flat RSS trend across a long soak is the observable form
// of the paged store's O(working set) memory claim.
func runSoak(client *http.Client, base string, pool []string, cfg soakConfig) {
	fmt.Fprintf(os.Stderr, "loadgen: %d URLs in pool, soaking %s from %d clients (report every %s)\n",
		len(pool), cfg.Duration, cfg.Clients, cfg.Report)

	var (
		errors  atomic.Int64
		fiveXX  atomic.Int64
		okCount atomic.Int64

		mu     sync.Mutex
		all    []time.Duration // cumulative, for the final summary
		window []time.Duration // since the last report line
	)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			pick := uniformPicker(len(pool))
			if cfg.ZipfS != 0 {
				pick = zipfPicker(cfg.ZipfS, len(pool), cfg.Seed+int64(worker))
			}
			for i := worker; time.Now().Before(deadline); i++ {
				target := base + endpoints[i%len(endpoints)] + "?url=" + url.QueryEscape(pool[pick(i)])
				d, status, err := get(client, target)
				switch {
				case err != nil:
					errors.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
					continue
				case status >= 500:
					fiveXX.Add(1)
				case status < 400:
					okCount.Add(1)
				}
				mu.Lock()
				all = append(all, d)
				window = append(window, d)
				mu.Unlock()
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	ticker := time.NewTicker(cfg.Report)
	defer ticker.Stop()
	for running := true; running; {
		select {
		case <-ticker.C:
		case <-done:
			running = false
		}
		mu.Lock()
		win := window
		window = nil
		total := len(all)
		mu.Unlock()
		if len(win) == 0 && running {
			continue
		}
		sort.Slice(win, func(i, j int) bool { return win[i] < win[j] })
		elapsed := time.Since(start).Seconds()
		line := fmt.Sprintf("soak t=%4.0fs  reqs=%d (%.1f req/s)", elapsed, total, float64(total)/elapsed)
		if len(win) > 0 {
			line += fmt.Sprintf("  window p50=%s p99=%s", quantile(win, 0.50), quantile(win, 0.99))
		}
		if rss := serverRSS(client, base); rss > 0 {
			line += fmt.Sprintf("  server-rss=%.1fMB", float64(rss)/(1<<20))
		}
		fmt.Println(line)
	}
	elapsed := time.Since(start)

	mu.Lock()
	latencies := all
	mu.Unlock()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("requests:   %d ok, %d 5xx, %d transport errors\n",
		okCount.Load(), fiveXX.Load(), errors.Load())
	fmt.Printf("throughput: %.1f req/s (%d requests in %.2fs)\n",
		float64(len(latencies))/elapsed.Seconds(), len(latencies), elapsed.Seconds())
	var p99 time.Duration
	if len(latencies) > 0 {
		p99 = quantile(latencies, 0.99)
		fmt.Printf("latency:    p50 %s  p90 %s  p99 %s  max %s\n",
			quantile(latencies, 0.50), quantile(latencies, 0.90),
			p99, latencies[len(latencies)-1])
	}
	if cfg.BenchName != "" && len(latencies) > 0 {
		mean := elapsed.Nanoseconds() / int64(len(latencies))
		rssMB := float64(serverRSS(client, base)) / (1 << 20)
		fmt.Printf("Benchmark%s %d %d ns/op %.3f p99ms %.1f req/s %.1f rss-mb\n",
			cfg.BenchName, len(latencies), mean,
			float64(p99.Microseconds())/1000, float64(len(latencies))/elapsed.Seconds(), rssMB)
	}
	switch {
	case fiveXX.Load() > 0 || errors.Load() > 0 || okCount.Load() == 0:
		os.Exit(1)
	case cfg.P99Max > 0 && p99 > cfg.P99Max:
		fmt.Fprintf(os.Stderr, "loadgen: p99 %s exceeds bound %s\n", p99, cfg.P99Max)
		os.Exit(1)
	}
}

// serverRSS scrapes the target's resident set size from /metrics
// ("mem".rss_bytes), returning 0 if unavailable.
func serverRSS(client *http.Client, base string) uint64 {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var doc struct {
		Mem struct {
			RSSBytes uint64 `json:"rss_bytes"`
		} `json:"mem"`
	}
	if json.NewDecoder(resp.Body).Decode(&doc) != nil {
		return 0
	}
	return doc.Mem.RSSBytes
}

// uniformPicker spreads request i across the pool round-robin.
func uniformPicker(poolSize int) func(i int) int {
	return func(i int) int { return i % poolSize }
}

// zipfPicker draws pool indexes zipf-distributed with skew s: index 0
// is the hottest link, and for s around 1.1–1.5 a handful of links
// take most of the traffic — the cache/singleflight stress shape.
func zipfPicker(s float64, poolSize int, seed int64) func(i int) int {
	z := rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, uint64(poolSize-1))
	return func(int) int { return int(z.Uint64()) }
}

func get(client *http.Client, target string) (time.Duration, int, error) {
	t0 := time.Now()
	resp, err := client.Get(target)
	d := time.Since(t0)
	if err != nil {
		return d, 0, fmt.Errorf("%s: %w", target, err)
	}
	resp.Body.Close()
	return d, resp.StatusCode, nil
}

// postBatch fires one /v1/classify/batch POST of size links drawn via
// pick and consumes the NDJSON stream, reporting how many lines
// arrived and how many were server-fault error lines (client-shaped
// error lines — unknown links, say — don't fail the run; the server
// answered them correctly).
func postBatch(client *http.Client, base string, pool []string, pick func(i int) int, size int) (time.Duration, int, int64, int64, error) {
	urls := make([]string, size)
	for i := range urls {
		urls[i] = pool[pick(i)]
	}
	body, err := json.Marshal(map[string][]string{"urls": urls})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/classify/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return time.Since(t0), 0, 0, 0, fmt.Errorf("batch POST: %w", err)
	}
	defer resp.Body.Close()
	var got, faults int64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		got++
		var line struct {
			Error *struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if json.Unmarshal(sc.Bytes(), &line) == nil && line.Error != nil {
			switch line.Error.Code {
			case "internal", "encode", "deadline", "overloaded":
				faults++
			}
		}
	}
	d := time.Since(t0)
	if err := sc.Err(); err != nil {
		return d, resp.StatusCode, got, faults, fmt.Errorf("batch stream: %w", err)
	}
	if resp.StatusCode == http.StatusOK && got != int64(size) {
		return d, resp.StatusCode, got, faults, fmt.Errorf("batch stream truncated: %d of %d lines", got, size)
	}
	return d, resp.StatusCode, got, faults, nil
}

// fetchSample pulls up to n URLs from the server's sampled population.
func fetchSample(client *http.Client, base string, n int) ([]string, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/sample?n=%d", base, n))
	if err != nil {
		return nil, fmt.Errorf("fetching /v1/sample: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/sample returned %d", resp.StatusCode)
	}
	var sr struct {
		URLs []string `json:"urls"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decoding /v1/sample: %w", err)
	}
	if len(sr.URLs) == 0 {
		return nil, fmt.Errorf("/v1/sample returned no URLs")
	}
	return sr.URLs, nil
}

func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// quantile returns the q-th latency from an ascending-sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Microsecond)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}
