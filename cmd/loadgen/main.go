// Command loadgen exercises a running permadeadd with N requests from
// C concurrent clients and reports throughput and latency quantiles.
// It discovers target URLs from the server's own /v1/sample endpoint,
// then spreads requests across the three query endpoints
// (/v1/classify, /v1/status, /v1/availability) over a bounded URL
// pool, so repeat traffic exercises the response cache.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8080 [-n 200] [-c 16] [-sample 64]
//
// Exit status is 1 if any request got a 5xx or transport error, or if
// nothing succeeded — CI smoke tests assert on the exit code alone.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

var endpoints = []string{"/v1/classify", "/v1/status", "/v1/availability"}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "permadeadd address (host:port)")
		n       = flag.Int("n", 200, "total number of requests")
		c       = flag.Int("c", 16, "concurrent clients")
		sample  = flag.Int("sample", 64, "URL pool size (smaller pools repeat URLs and hit the cache)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	)
	flag.Parse()
	if *n < 1 || *c < 1 || *sample < 1 {
		fatal(fmt.Errorf("-n, -c, and -sample must all be >= 1"))
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout}

	pool, err := fetchSample(client, base, *sample)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d URLs in pool, firing %d requests from %d clients\n", len(pool), *n, *c)

	var (
		next      atomic.Int64
		errors    atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		byClass   = map[string]*atomic.Int64{"2xx": {}, "3xx": {}, "4xx": {}, "5xx": {}}
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				target := base + endpoints[i%len(endpoints)] + "?url=" + url.QueryEscape(pool[i%len(pool)])
				t0 := time.Now()
				resp, err := client.Get(target)
				d := time.Since(t0)
				if err != nil {
					errors.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: %s: %v\n", target, err)
					continue
				}
				resp.Body.Close()
				byClass[statusClass(resp.StatusCode)].Add(1)
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ok := byClass["2xx"].Load() + byClass["3xx"].Load()
	fmt.Printf("requests:   %d ok, %d 4xx, %d 5xx, %d transport errors\n",
		ok, byClass["4xx"].Load(), byClass["5xx"].Load(), errors.Load())
	fmt.Printf("throughput: %.1f req/s (%d requests in %.2fs)\n",
		float64(len(latencies))/elapsed.Seconds(), len(latencies), elapsed.Seconds())
	if len(latencies) > 0 {
		fmt.Printf("latency:    p50 %s  p90 %s  p99 %s  max %s\n",
			quantile(latencies, 0.50), quantile(latencies, 0.90),
			quantile(latencies, 0.99), latencies[len(latencies)-1])
	}

	if byClass["5xx"].Load() > 0 || errors.Load() > 0 || ok == 0 {
		os.Exit(1)
	}
}

// fetchSample pulls up to n URLs from the server's sampled population.
func fetchSample(client *http.Client, base string, n int) ([]string, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/sample?n=%d", base, n))
	if err != nil {
		return nil, fmt.Errorf("fetching /v1/sample: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/sample returned %d", resp.StatusCode)
	}
	var sr struct {
		URLs []string `json:"urls"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decoding /v1/sample: %w", err)
	}
	if len(sr.URLs) == 0 {
		return nil, fmt.Errorf("/v1/sample returned no URLs")
	}
	return sr.URLs, nil
}

func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// quantile returns the q-th latency from an ascending-sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Microsecond)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}
