// Command permadeadd serves link-status queries over a simulated
// universe: Wayback-style availability lookups, live-web verdicts,
// and the full per-link study classification, each as an HTTP
// endpoint (see internal/service for the API).
//
// Usage:
//
//	permadeadd [-addr host:port] [-scale f] [-seed n] [-load file]
//	           [-universe.paged=bool] [-flaky f] [-flaky-stream-days n]
//	           [-monitor-ttl days] [-journal file] [-repair]
//	           [-archives manifest.json] [-fed-budget ms] [-fed-hedge f]
//
// The universe is generated at startup (or loaded from a 'worldgen
// -save' file); the server then answers queries until SIGINT/SIGTERM,
// at which point it drains gracefully: in-flight requests complete,
// new ones get 503. Paged (format v4) universe files are mmap'd and
// served page-on-demand, so cold start is milliseconds and resident
// memory tracks the touched working set; -universe.paged=false forces
// the whole file into memory instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"permadead/internal/federation"
	"permadead/internal/persist"
	"permadead/internal/service"
	"permadead/internal/worldgen"
)

func main() {
	defaults := service.DefaultConfig()
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		scale    = flag.Float64("scale", 0.25, "universe scale relative to the paper's 10,000-link study")
		seed     = flag.Int64("seed", 1, "generation and sampling seed")
		sample   = flag.Int("sample", 0, "sample size override (0 = scaled default)")
		load     = flag.String("load", "", "serve a universe saved by 'worldgen -save' instead of generating one")
		paged    = flag.Bool("universe.paged", true, "mmap a paged (format v4) universe file and serve it page-on-demand; =false reads the file fully into memory")

		maxInFlight     = flag.Int("max-inflight", defaults.MaxInFlight, "bound on concurrently admitted requests")
		classifyWorkers = flag.Int("classify-workers", defaults.ClassifyWorkers, "bound on concurrent classifications")
		reqTimeout      = flag.Duration("request-timeout", defaults.RequestTimeout, "per-request deadline (admission wait included)")
		cacheEntries    = flag.Int("cache-entries", defaults.CacheEntries, "response cache capacity in entries (0 disables)")
		cacheShards     = flag.Int("cache-shards", defaults.CacheShards, "response cache shard count")
		negCacheEntries = flag.Int("neg-cache-entries", defaults.NegCacheEntries, "negative-result cache capacity in entries (0 disables)")
		maxBatch        = flag.Int("max-batch", defaults.MaxBatchLinks, "max links per /v1/classify/batch request")
		batchWorkers    = flag.Int("batch-workers", defaults.BatchWorkers, "per-batch classify fan-out (clamped to -classify-workers)")
		noPrefilter     = flag.Bool("no-prefilter", false, "disable the frozen archive's capture prefilter (for benchmarking)")
		liveLatency     = flag.Duration("live-latency", 0, "floor each classification's service time with this wall-clock wait, modeling real live-web I/O (0 = simulator full speed)")
		memoCap         = flag.Int("memo-cap", defaults.MemoCap, "per-map entry bound on the archive memo (0 = unbounded)")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")

		flaky           = flag.Float64("flaky", -1, "fraction of sites with recurring fault windows (generated universes only; <0 keeps the scaled default)")
		flakyRate       = flag.Float64("flaky-rate", -1, "per-window error rate on flaky sites (<0 keeps the default)")
		flakyStreamDays = flag.Int("flaky-stream-days", 0, "extend flaky fault windows this many days past the study day (continuous flip supply for the monitor)")

		noMonitor      = flag.Bool("no-monitor", false, "disable the continuous verdict monitor and its endpoints")
		monitorTTL     = flag.Int("monitor-ttl", defaults.MonitorTTLDays, "days before a warm verdict goes stale and is re-checked")
		monitorWorkers = flag.Int("monitor-checkers", defaults.MonitorCheckers, "concurrent re-check workers in the monitor")
		sseBuffer      = flag.Int("sse-buffer", defaults.SSESubscriberBuffer, "per-subscriber event buffer; slow consumers past it are dropped")
		maxSubs        = flag.Int("max-subscribers", defaults.MaxSSESubscribers, "bound on concurrent /v1/stream/verdicts subscribers")
		journalPath    = flag.String("journal", "", "append verdict flips to this NDJSON file (empty = in-memory only)")
		journalWindow  = flag.Int("journal-window", defaults.JournalWindow, "in-memory flip-journal window; older SSE resume cursors replay from -journal or get 410 (0 = unbounded)")
		repair         = flag.Bool("repair", false, "run the IABot repair loop: rescue links that flip to dead with archive URLs")

		shardName    = flag.String("shard-name", "", "run as this member of a sharded fleet (requires -shard-members)")
		shardMembers = flag.String("shard-members", "", "comma-separated fleet member names, identical on every shard and the router")
		shardVNodes  = flag.Int("shard-vnodes", 0, "consistent-hash virtual nodes per member (0 = default)")

		archivesPath = flag.String("archives", "", "federate archive reads across the member manifest in this JSON file (see 'worldgen -archives'); empty serves the bare archive")
		fedBudget    = flag.Int("fed-budget", -1, "federation-wide lookup budget in ms, overriding the manifest (<0 keeps the manifest's; 0 = unbounded)")
		fedHedge     = flag.Float64("fed-hedge", -1, "hedge deadline as a fraction of the budget, overriding the manifest (<0 keeps the manifest's)")
		fedTimeScale = flag.Float64("fed-timescale", -1, "wall-clock seconds per simulated second for federated lookups, overriding the manifest (<0 keeps the manifest's; 0 = instant)")
	)
	flag.Parse()

	var bundle *persist.Bundle
	var loadDur time.Duration
	if *load != "" {
		start := time.Now()
		b, err := openUniverse(*load, *paged)
		if err != nil {
			fatal(err)
		}
		bundle = b
		loadDur = time.Since(start)
	} else {
		params := worldgen.DefaultParams().Scale(*scale)
		params.Seed = *seed
		if *flaky >= 0 {
			params.FlakySiteFrac = *flaky
		}
		if *flakyRate >= 0 {
			params.FlakyRate = *flakyRate
		}
		if *flakyStreamDays > 0 {
			params.FlakyStreamDays = *flakyStreamDays
		}
		fmt.Fprintf(os.Stderr, "generating universe (scale %.2f, seed %d)...\n", *scale, *seed)
		start := time.Now()
		u := worldgen.Generate(params)
		loadDur = time.Since(start)
		fmt.Fprintf(os.Stderr, "generated in %.1fs\n", loadDur.Seconds())
		bundle = persist.FromUniverse(u)
	}
	defer bundle.Close()

	cfg := defaults
	cfg.Study.Seed = *seed
	cfg.Study.SampleSize = bundle.Params.SampleSize
	if *sample > 0 {
		cfg.Study.SampleSize = *sample
	}
	cfg.Study.CrawlArticles = 0
	cfg.MaxInFlight = *maxInFlight
	cfg.ClassifyWorkers = *classifyWorkers
	cfg.RequestTimeout = *reqTimeout
	cfg.CacheEntries = *cacheEntries
	cfg.CacheShards = *cacheShards
	cfg.NegCacheEntries = *negCacheEntries
	cfg.MaxBatchLinks = *maxBatch
	cfg.BatchWorkers = *batchWorkers
	cfg.DisablePrefilter = *noPrefilter
	cfg.SimLiveLatency = *liveLatency
	cfg.MemoCap = *memoCap
	cfg.DisableMonitor = *noMonitor
	cfg.MonitorTTLDays = *monitorTTL
	cfg.MonitorCheckers = *monitorWorkers
	cfg.SSESubscriberBuffer = *sseBuffer
	cfg.MaxSSESubscribers = *maxSubs
	cfg.JournalPath = *journalPath
	cfg.JournalWindow = *journalWindow
	cfg.EnableRepair = *repair
	if *shardName != "" {
		if *shardMembers == "" {
			fatal(fmt.Errorf("-shard-name requires -shard-members"))
		}
		cfg.ShardName = *shardName
		for _, m := range strings.Split(*shardMembers, ",") {
			if m = strings.TrimSpace(m); m != "" {
				cfg.ShardMembers = append(cfg.ShardMembers, m)
			}
		}
		cfg.ShardVNodes = *shardVNodes
	}
	if *archivesPath != "" {
		m, err := federation.LoadManifest(*archivesPath)
		if err != nil {
			fatal(err)
		}
		if *fedBudget >= 0 {
			m.BudgetMS = *fedBudget
		}
		if *fedHedge >= 0 {
			m.HedgeFraction = *fedHedge
		}
		if *fedTimeScale >= 0 {
			m.TimeScale = *fedTimeScale
		}
		if err := m.Validate(); err != nil {
			fatal(err)
		}
		cfg.Federation = &m
	}

	// Startup-phase timing: load (or generate), freeze (service.New
	// freezes the archive and collects the sample), listen. One log
	// line here, and the same numbers under /metrics "startup_ms".
	freezeStart := time.Now()
	srv, err := service.New(bundle, cfg)
	if err != nil {
		fatal(err)
	}
	freezeDur := time.Since(freezeStart)
	listenStart := time.Now()
	if err := srv.Start(*addr); err != nil {
		fatal(err)
	}
	listenDur := time.Since(listenStart)
	srv.RecordStartupPhase("load", loadDur)
	srv.RecordStartupPhase("freeze", freezeDur)
	srv.RecordStartupPhase("listen", listenDur)
	fmt.Fprintf(os.Stderr, "permadeadd: startup load=%dms freeze=%dms listen=%dms total=%dms\n",
		loadDur.Milliseconds(), freezeDur.Milliseconds(), listenDur.Milliseconds(),
		(loadDur + freezeDur + listenDur).Milliseconds())
	fmt.Fprintf(os.Stderr, "permadeadd: serving %d sampled links on http://%s\n", srv.SampleSize(), srv.Addr())
	if *shardName != "" {
		fmt.Fprintf(os.Stderr, "permadeadd: fleet member %s of [%s]\n", *shardName, *shardMembers)
	}
	if cfg.Federation != nil {
		fmt.Fprintf(os.Stderr, "permadeadd: federating %d archive members (budget %dms, hedge %.2f)\n",
			len(cfg.Federation.Members), cfg.Federation.BudgetMS, cfg.Federation.HedgeFraction)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "permadeadd: %v received, draining (up to %v)...\n", sig, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("drain incomplete: %w", err))
	}
	fmt.Fprintln(os.Stderr, "permadeadd: drained cleanly")
}

// openUniverse loads a saved universe. Paged (format v4) files are
// mmap'd and served page-on-demand unless -universe.paged=false, which
// forces a full read into memory; gob (v3) files always load fully.
func openUniverse(path string, paged bool) (*persist.Bundle, error) {
	if paged {
		return persist.Open(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return persist.Load(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "permadeadd: %v\n", err)
	os.Exit(1)
}
