// Command universeconv migrates saved universes from the legacy gob
// stream (persist format v3) to the paged on-disk format (v4), whose
// section layout permadeadd can mmap and serve page-on-demand. It also
// verifies paged files end to end and measures the cold-start
// difference between the two formats.
//
// Usage:
//
//	universeconv -in u.gob -out u.pduniv          convert v3 -> v4
//	universeconv -check u.pduniv                  verify checksums + structure
//	universeconv -in u.gob -out u.pduniv -bench   convert, then emit
//	                                              benchjson-compatible
//	                                              cold-start lines
//
// Conversion goes through the v3 decoder, so revision IDs, CDX
// insertion order, and snapshot ordering are preserved exactly; the
// output is deterministic (converting the same input twice yields
// byte-identical files) and is verified before the command reports
// success.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"permadead/internal/persist"
)

func main() {
	var (
		in    = flag.String("in", "", "input universe (gob v3, from 'worldgen -save-format gob')")
		out   = flag.String("out", "", "output paged universe (format v4)")
		check = flag.String("check", "", "verify a saved universe file and exit (paged files: full checksum + structure pass)")
		bench = flag.Bool("bench", false, "after converting, print cold-start benchmark lines for gob vs paged (pipe through cmd/benchjson)")
	)
	flag.Parse()

	if *check != "" {
		if err := verify(*check); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: OK\n", *check)
		return
	}
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "universeconv: need -in and -out (or -check)")
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	b, err := loadGob(*in)
	if err != nil {
		fatal(err)
	}
	if b.Archive.StoreBacked() {
		fatal(fmt.Errorf("%s is already a paged (v4) file", *in))
	}
	loadDur := time.Since(start)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	start = time.Now()
	if err := persist.SavePaged(f, b); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	saveDur := time.Since(start)
	if err := persist.VerifyPaged(*out); err != nil {
		fatal(fmt.Errorf("converted file failed verification: %w", err))
	}
	inSize, outSize := fileSize(*in), fileSize(*out)
	fmt.Fprintf(os.Stderr, "universeconv: %s (%.1f MB gob) -> %s (%.1f MB paged) in %.1fs decode + %.1fs encode; verified\n",
		*in, mb(inSize), *out, mb(outSize), loadDur.Seconds(), saveDur.Seconds())

	if *bench {
		benchColdStart(*in, *out)
	}
}

// benchColdStart measures cold-start time for both formats and prints
// go-bench-style lines (cmd/benchjson turns them into BENCH_PR7.json).
// Each "load" is open + one query, i.e. time to first useful answer:
// the gob path decodes and re-indexes the whole universe, the paged
// path maps the file and binary-searches one host.
func benchColdStart(gobPath, pagedPath string) {
	gobDur, err := timeGobLoad(gobPath)
	if err != nil {
		fatal(err)
	}

	// The paged open is microseconds-to-milliseconds; run it a few
	// times and report the median-ish middle run for stability.
	const runs = 5
	durs := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		d, err := timePagedOpen(pagedPath)
		if err != nil {
			fatal(err)
		}
		durs = append(durs, d)
	}
	pagedDur := median(durs)

	speedup := float64(gobDur) / float64(pagedDur)
	fmt.Printf("BenchmarkUniverseLoadGob \t%8d\t%12d ns/op\t%12.3f load-ms\n",
		1, gobDur.Nanoseconds(), ms(gobDur))
	fmt.Printf("BenchmarkUniverseOpenPaged \t%8d\t%12d ns/op\t%12.3f load-ms\t%8.1f speedup\n",
		runs, pagedDur.Nanoseconds(), ms(pagedDur), speedup)
	fmt.Fprintf(os.Stderr, "universeconv: cold start %.3fms paged vs %.0fms gob (%.0fx)\n",
		ms(pagedDur), ms(gobDur), speedup)
}

func timeGobLoad(path string) (time.Duration, error) {
	start := time.Now()
	b, err := loadGob(path)
	if err != nil {
		return 0, err
	}
	if b.Archive.TotalSnapshots() == 0 {
		return 0, fmt.Errorf("%s: empty archive", path)
	}
	return time.Since(start), nil
}

func timePagedOpen(path string) (time.Duration, error) {
	start := time.Now()
	b, err := persist.OpenPaged(path)
	if err != nil {
		return 0, err
	}
	defer b.Close()
	if b.Archive.TotalSnapshots() == 0 {
		return 0, fmt.Errorf("%s: empty archive", path)
	}
	return time.Since(start), nil
}

// verify checks a saved universe: paged files get the full checksum +
// structure pass, gob files a complete decode.
func verify(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var magic [4]byte
	n, _ := f.Read(magic[:])
	f.Close()
	if n == 4 && string(magic[:]) == "PDU4" {
		return persist.VerifyPaged(path)
	}
	_, err = loadGob(path)
	return err
}

func loadGob(path string) (*persist.Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return persist.Load(f)
}

func median(durs []time.Duration) time.Duration {
	for i := 1; i < len(durs); i++ {
		for j := i; j > 0 && durs[j] < durs[j-1]; j-- {
			durs[j], durs[j-1] = durs[j-1], durs[j]
		}
	}
	return durs[len(durs)/2]
}

func fileSize(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return st.Size()
}

func mb(n int64) float64 { return float64(n) / (1 << 20) }

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "universeconv: %v\n", err)
	os.Exit(1)
}
