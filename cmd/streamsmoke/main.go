// Command streamsmoke asserts the continuous-monitor contract against
// a running permadeadd: it watches the articles citing the sampled
// links, subscribes to /v1/stream/verdicts, drives the sim clock
// across fault-window boundaries, and then checks every promise the
// stream makes:
//
//   - flips happen in both directions (alive->dead and dead->alive)
//     and at least one dead verdict is flagged suspect (measured
//     inside a fault window);
//   - the live stream delivered journal seqs 1..N exactly once, in
//     order, and each frame's id matches its payload seq;
//   - reconnecting with Last-Event-ID = N/2 replays exactly seqs
//     N/2+1..N — no gap, no duplicate at the replay/live seam;
//   - with -expect-repair, the IABot loop actually edited wikitext:
//     /metrics reports repairs_edited > 0 and a flipped article's
//     current text carries an archive-url or {{Dead link}} mark.
//
// Any violated assertion prints FAIL and exits 1; CI asserts on the
// exit code alone.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"
)

var (
	addr         = flag.String("addr", "127.0.0.1:8080", "permadeadd address (host:port)")
	articles     = flag.Int("articles", 120, "sampled links whose articles get watched")
	tickDays     = flag.Int("tick-days", 150, "total sim days to advance")
	tickStep     = flag.Int("tick-step", 15, "sim days per tick")
	expectRepair = flag.Bool("expect-repair", false, "require the IABot repair loop to have edited a flipped article")
	timeout      = flag.Duration("timeout", 60*time.Second, "overall budget for stream reads")
)

type entry struct {
	Seq           int64    `json:"seq"`
	URL           string   `json:"url"`
	Old           string   `json:"old"`
	New           string   `json:"new"`
	Suspect       bool     `json:"suspect"`
	Articles      []string `json:"articles"`
	EmittedUnixNs int64    `json:"emitted_unix_ns"`
}

type frame struct {
	id    int64
	event string
	data  string
}

func main() {
	flag.Parse()
	base := "http://" + *addr
	client := &http.Client{Timeout: 30 * time.Second}

	// Watch the sampled articles.
	titles := sampleTitles(client, base, *articles)
	var wr struct {
		Added        int `json:"added"`
		WatchedLinks int `json:"watched_links"`
	}
	postJSON(client, base+"/v1/watch", map[string]any{"articles": titles}, &wr)
	if wr.WatchedLinks == 0 {
		fail("watched %d articles but the monitor tracks 0 links", len(titles))
	}
	fmt.Printf("watching %d links across %d articles\n", wr.WatchedLinks, len(titles))

	// Subscribe before any flips exist, then advance the clock across
	// fault-window boundaries. Ticks run re-checks synchronously, so
	// after the last tick the journal is complete. The ready signal
	// matters: ticking before the subscription registers would turn
	// early flips into replay instead of live delivery.
	frames := make(chan frame, 4096)
	ready := make(chan struct{})
	go streamFrom(base, 0, frames, ready)
	<-ready
	var n int64
	for spent := 0; spent < *tickDays; spent += *tickStep {
		var tr struct {
			Stats struct {
				JournalEntries int64 `json:"journal_entries"`
				FlipsToDead    int64 `json:"flips_to_dead"`
				FlipsToAlive   int64 `json:"flips_to_alive"`
			} `json:"stats"`
		}
		postJSON(client, base+"/v1/sim/tick", map[string]int{"days": *tickStep}, &tr)
		n = tr.Stats.JournalEntries
	}
	if n == 0 {
		fail("no verdict flips after %d sim days (is the universe flaky?)", *tickDays)
	}
	fmt.Printf("%d flips journaled over %d sim days\n", n, *tickDays)

	// The live subscriber must have received exactly seqs 1..N in order.
	live := collect(frames, n)
	verifyEntries(live, 1, n, "live stream")
	var toDead, toAlive, suspect int
	for _, e := range live {
		switch e.New {
		case "dead":
			toDead++
			if e.Suspect {
				suspect++
			}
		case "alive":
			toAlive++
		}
		if e.EmittedUnixNs == 0 {
			fail("live event seq %d carries no emission stamp", e.Seq)
		}
		if len(e.Articles) == 0 {
			fail("flip seq %d names no citing articles", e.Seq)
		}
	}
	if toDead == 0 || toAlive == 0 {
		fail("flips are one-directional: %d to dead, %d to alive (fault windows should open and close)", toDead, toAlive)
	}
	if suspect == 0 {
		fail("no dead verdict was flagged suspect despite fault windows")
	}
	fmt.Printf("live stream OK: seqs 1..%d exactly once (%d to dead, %d to alive, %d suspect)\n",
		n, toDead, toAlive, suspect)

	// Resume from the midpoint: exactly N/2+1..N, replayed (no stamp).
	k := n / 2
	resumed := make(chan frame, 4096)
	resumedReady := make(chan struct{})
	go streamFrom(base, k, resumed, resumedReady)
	replay := collect(resumed, n-k)
	verifyEntries(replay, k+1, n, "resumed stream")
	for _, e := range replay {
		if e.EmittedUnixNs != 0 {
			fail("replayed event seq %d carries a live emission stamp", e.Seq)
		}
	}
	fmt.Printf("resume OK: Last-Event-ID %d replayed exactly %d..%d\n", k, k+1, n)

	if *expectRepair {
		checkRepair(client, base, live)
	}
	fmt.Println("stream smoke OK")
}

// streamFrom opens /v1/stream/verdicts resuming after lastSeq and
// parses SSE frames onto ch until the connection ends. ready is closed
// once the server has accepted the subscription (response headers in).
func streamFrom(base string, lastSeq int64, ch chan<- frame, ready chan<- struct{}) {
	defer close(ch)
	target := base + "/v1/stream/verdicts"
	req, err := http.NewRequest(http.MethodGet, target, nil)
	if err != nil {
		fail("%v", err)
	}
	if lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastSeq, 10))
	}
	resp, err := http.DefaultClient.Do(req) // no timeout: the stream is long-lived
	if err != nil {
		fail("opening stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		fail("stream returned %d: %s", resp.StatusCode, body)
	}
	close(ready)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var f frame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if f.event != "" || f.data != "" {
				ch <- f
			}
			f = frame{}
		case strings.HasPrefix(line, "id: "):
			f.id, _ = strconv.ParseInt(line[4:], 10, 64)
		case strings.HasPrefix(line, "event: "):
			f.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			f.data = line[6:]
		}
	}
}

// collect reads exactly want verdict frames, decoding each payload and
// checking the frame id against it.
func collect(ch <-chan frame, want int64) []entry {
	var out []entry
	deadline := time.After(*timeout)
	for int64(len(out)) < want {
		select {
		case f, ok := <-ch:
			if !ok {
				fail("stream closed after %d of %d events", len(out), want)
			}
			if f.event != "verdict" {
				fail("unexpected frame type %q (data: %s)", f.event, f.data)
			}
			var e entry
			if err := json.Unmarshal([]byte(f.data), &e); err != nil {
				fail("bad event payload: %v (%s)", err, f.data)
			}
			if e.Seq != f.id {
				fail("frame id %d disagrees with payload seq %d", f.id, e.Seq)
			}
			out = append(out, e)
		case <-deadline:
			fail("timed out with %d of %d events", len(out), want)
		}
	}
	return out
}

// verifyEntries asserts entries carry seqs from..to exactly once, in
// order — the exactly-once delivery contract.
func verifyEntries(entries []entry, from, to int64, what string) {
	if int64(len(entries)) != to-from+1 {
		fail("%s delivered %d events, want %d (seqs %d..%d)", what, len(entries), to-from+1, from, to)
	}
	for i, e := range entries {
		if want := from + int64(i); e.Seq != want {
			fail("%s event %d has seq %d, want %d (exactly-once, in order)", what, i, e.Seq, want)
		}
		if e.Old == e.New || e.URL == "" {
			fail("%s seq %d is not a flip: old=%q new=%q url=%q", what, e.Seq, e.Old, e.New, e.URL)
		}
	}
}

// checkRepair asserts the IABot loop edited at least one article that
// flipped to dead: counted in /metrics, visible in the wikitext.
func checkRepair(client *http.Client, base string, live []entry) {
	var met struct {
		Monitor struct {
			RepairsEdited int64 `json:"repairs_edited"`
		} `json:"monitor"`
	}
	getJSON(client, base+"/metrics", &met)
	if met.Monitor.RepairsEdited == 0 {
		fail("-expect-repair: /metrics reports repairs_edited = 0")
	}
	// Find a repaired article: any article cited by a flip-to-dead
	// whose current text carries the rescue mark.
	for _, e := range live {
		if e.New != "dead" {
			continue
		}
		for _, title := range e.Articles {
			var ar struct {
				Text string `json:"text"`
			}
			getJSON(client, base+"/v1/sim/article?title="+url.QueryEscape(title), &ar)
			if strings.Contains(ar.Text, "archive-url=") || strings.Contains(ar.Text, "{{Dead link") {
				fmt.Printf("repair OK: %d edits, %q carries a rescue mark\n", met.Monitor.RepairsEdited, title)
				return
			}
		}
	}
	fail("-expect-repair: %d repairs counted but no flipped article carries archive-url or {{Dead link}}", met.Monitor.RepairsEdited)
}

// sampleTitles pulls the articles citing the first n sampled links.
func sampleTitles(client *http.Client, base string, n int) []string {
	var sr struct {
		Articles []string `json:"articles"`
	}
	getJSON(client, fmt.Sprintf("%s/v1/sample?n=%d&articles=1", base, n), &sr)
	seen := make(map[string]bool)
	var titles []string
	for _, a := range sr.Articles {
		if !seen[a] {
			seen[a] = true
			titles = append(titles, a)
		}
	}
	if len(titles) == 0 {
		fail("/v1/sample returned no article titles")
	}
	return titles
}

func getJSON(client *http.Client, target string, out any) {
	resp, err := client.Get(target)
	if err != nil {
		fail("GET %s: %v", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		fail("GET %s returned %d: %s", target, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		fail("GET %s: bad JSON: %v", target, err)
	}
}

func postJSON(client *http.Client, target string, body, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		fail("%v", err)
	}
	resp, err := client.Post(target, "application/json", bytes.NewReader(data))
	if err != nil {
		fail("POST %s: %v", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		fail("POST %s returned %d: %s", target, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			fail("POST %s: bad JSON: %v", target, err)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
	os.Exit(1)
}
