// Command simwebd serves a generated synthetic web over real HTTP and
// HTTPS on the loopback interface, so the simulation can be explored
// with curl or a browser. Virtual hosting is by Host header:
//
//	simwebd -scale 0.05
//	curl -s -H 'Host: www.example.simnews' http://127.0.0.1:PORT/some/path
//
// The -day flag selects the simulated date the web is served "as of";
// requests may override it per call with the X-Sim-Day header.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"permadead/internal/simclock"
	"permadead/internal/simweb"
	"permadead/internal/worldgen"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.05, "universe scale")
		seed  = flag.Int64("seed", 1, "generation seed")
		day   = flag.String("day", "", "serve the web as of this date (YYYY-MM-DD; default: the study date)")
		show  = flag.Int("show", 10, "print this many sample URLs")
	)
	flag.Parse()

	at := simclock.StudyTime
	if *day != "" {
		t, err := time.Parse("2006-01-02", *day)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simwebd: bad -day: %v\n", err)
			os.Exit(1)
		}
		at = simclock.FromTime(t)
	}

	params := worldgen.DefaultParams().Scale(*scale)
	params.Seed = *seed
	fmt.Fprintf(os.Stderr, "generating universe (scale %.2f)...\n", *scale)
	u := worldgen.Generate(params)

	srv := simweb.NewServer(u.World, at)
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "simwebd: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	// The simulated Wayback Machine's HTTP APIs (availability + CDX)
	// ride along on their own listener.
	apiLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simwebd: %v\n", err)
		os.Exit(1)
	}
	apiSrv := &http.Server{Handler: u.Archive.Handler()}
	go apiSrv.Serve(apiLn) //nolint:errcheck
	defer apiSrv.Close()

	fmt.Printf("serving %d sites as of %s\n", u.World.Sites(), at)
	fmt.Printf("  http        %s\n", srv.HTTPAddr())
	fmt.Printf("  https       %s (self-signed)\n", srv.HTTPSAddr())
	fmt.Printf("  archive API %s  (/wayback/available, /cdx/search/cdx)\n", apiLn.Addr())
	fmt.Println("\nsample archive API queries:")
	for i, lp := range u.Plan.Links {
		if i >= 2 {
			break
		}
		fmt.Printf("  curl -s 'http://%s/wayback/available?url=%s'\n", apiLn.Addr(), lp.URL)
		fmt.Printf("  curl -s 'http://%s/cdx/search/cdx?url=%s&matchType=host&output=json'\n", apiLn.Addr(), lp.Host)
	}

	fmt.Println("\nsample permanently dead links to try:")
	for i, lp := range u.Plan.Links {
		if i >= *show {
			break
		}
		fmt.Printf("  curl -si -H 'Host: %s' 'http://%s%s' | head -1   # destined: %s\n",
			lp.Host, srv.HTTPAddr(), lp.Path, lp.Live)
	}
	fmt.Println("\nCtrl-C to stop.")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Println("\nshutting down")
}
