// Command worldgen generates a simulated universe and reports what it
// built: generation summary, fate quotas vs. realized counts, and
// (optionally) a JSON dump of the link plans for external analysis.
//
// Usage:
//
//	worldgen [-scale f] [-seed n] [-save u.pduniv] [-save-format paged|gob]
//	         [-json plans.json] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"permadead/internal/federation"
	"permadead/internal/persist"
	"permadead/internal/shard"
	"permadead/internal/worldgen"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.25, "universe scale relative to the paper's 10,000-link study")
		seed     = flag.Int64("seed", 1, "generation seed")
		jsonPath = flag.String("json", "", "write link plans as JSON to this file")
		savePath = flag.String("save", "", "persist the generated universe to this file")
		saveFmt  = flag.String("save-format", "paged", `persist format: "paged" (format v4: mmap-able, millisecond loads) or "gob" (legacy format v3)`)
		dumpPath = flag.String("dump", "", "export the simulated wiki as a MediaWiki XML dump to this file")
		verbose  = flag.Bool("v", false, "print per-fate counts")

		flaky          = flag.Float64("flaky", 0, "fraction of sites given transient-fault windows (0 = off; the study's default universe)")
		flakyRate      = flag.Float64("flaky-rate", 0.5, "per-attempt failure probability inside a fault window")
		flakyRetryWait = flag.Int("flaky-retry-after", 0, "Retry-After seconds advertised by injected 429/503 responses (0 = per-window default)")

		shards  = flag.Int("shards", 0, "report how an N-member fleet would partition the universe's link domains; with -save, also write a <save>.fleet.json manifest")
		svnodes = flag.Int("shard-vnodes", 0, "virtual nodes per member for the -shards report (0 = default)")

		archives = flag.Int("archives", 0, "derive an N-member archive-federation manifest with seed-deterministic coverage/latency skew; with -save, write it to <save>.archives.json")
	)
	flag.Parse()

	params := worldgen.DefaultParams().Scale(*scale)
	params.Seed = *seed
	params.FlakySiteFrac = *flaky
	params.FlakyRate = *flakyRate
	params.FlakyRetryAfterSec = *flakyRetryWait

	start := time.Now()
	u := worldgen.Generate(params)
	fmt.Printf("generated in %.1fs\n", time.Since(start).Seconds())
	fmt.Print(u.Summary())

	if *verbose {
		live := map[string]int{}
		hist := map[string]int{}
		for _, lp := range u.Plan.Links {
			live[lp.Live.String()]++
			hist[lp.Hist.String()]++
		}
		fmt.Println("\nplanned live outcomes:")
		for _, k := range []string{"dns", "404", "timeout", "other", "200-real", "200-soft"} {
			fmt.Printf("  %-10s %d\n", k, live[k])
		}
		fmt.Println("planned archive histories:")
		for _, k := range []string{"pre200", "redir-valid", "redir-err", "err-only", "none"} {
			fmt.Printf("  %-12s %d\n", k, hist[k])
		}
	}

	if *savePath != "" {
		save := persist.SavePaged
		switch *saveFmt {
		case "paged":
		case "gob":
			save = persist.Save
		default:
			fmt.Fprintf(os.Stderr, "worldgen: unknown -save-format %q (want paged or gob)\n", *saveFmt)
			os.Exit(2)
		}
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
			os.Exit(1)
		}
		if err := save(f, persist.FromUniverse(u)); err != nil {
			fmt.Fprintf(os.Stderr, "worldgen: save: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("saved universe (%s) to %s\n", *saveFmt, *savePath)
	}

	if *dumpPath != "" {
		f, err := os.Create(*dumpPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
			os.Exit(1)
		}
		if err := u.Wiki.WriteDump(f); err != nil {
			fmt.Fprintf(os.Stderr, "worldgen: dump: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote MediaWiki XML dump to %s\n", *dumpPath)
	}

	if *shards > 0 {
		if err := reportShards(u, *shards, *svnodes, *savePath); err != nil {
			fmt.Fprintf(os.Stderr, "worldgen: shards: %v\n", err)
			os.Exit(1)
		}
	}

	if *archives > 0 {
		if err := reportArchives(u, *archives, *savePath); err != nil {
			fmt.Fprintf(os.Stderr, "worldgen: archives: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(u.Plan.Links); err != nil {
			fmt.Fprintf(os.Stderr, "worldgen: encode: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d link plans to %s\n", len(u.Plan.Links), *jsonPath)
	}
}

// reportArchives derives the n-member federation manifest the
// universe's parameters imply (seed-deterministic per-archive coverage
// and latency skew) and prints it; with -save set it also lands in
// <save>.archives.json, ready for permadeadd -archives.
func reportArchives(u *worldgen.Universe, n int, savePath string) error {
	m := worldgen.FederationManifest(u.Params, n)
	if err := m.Validate(); err != nil {
		return err
	}
	fmt.Printf("\narchive federation (%d members, budget %dms):\n", len(m.Members), m.BudgetMS)
	for _, ms := range m.Members {
		cov := ms.Coverage
		if cov <= 0 || cov >= 1 {
			cov = 1
		}
		policy := ms.Policy
		if policy == "" {
			policy = federation.PolicyKeepAll
		}
		lat := "inherited"
		if ms.LatencyMS > 0 || ms.JitterMS > 0 {
			lat = fmt.Sprintf("%d+%dms", ms.LatencyMS, ms.JitterMS)
		}
		fmt.Printf("  %-18s coverage %.2f  policy %-11s latency %s\n", ms.Name, cov, policy, lat)
	}
	if savePath == "" {
		return nil
	}
	path := savePath + ".archives.json"
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote federation manifest to %s\n", path)
	return nil
}

// reportShards previews how an n-member fleet would partition the
// generated universe: per-member owned link counts over the
// consistent-hash ring a real fleet would build from the same names.
// With -save set, the same numbers land in <save>.fleet.json, the
// manifest a fleet launcher feeds to permadeadd -shard-members and
// permadead-router -members.
func reportShards(u *worldgen.Universe, n, vnodes int, savePath string) error {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i+1)
	}
	ring, err := shard.New(names, vnodes)
	if err != nil {
		return err
	}
	domains := make([]string, len(u.Plan.Links))
	for i, lp := range u.Plan.Links {
		domains[i] = lp.Domain
	}
	counts := ring.OwnedCount(domains)
	fmt.Printf("\nfleet partition (%d shards, %d links):\n", n, len(domains))
	even := float64(len(domains)) / float64(n)
	for _, name := range names {
		c := counts[name]
		fmt.Printf("  %-4s %6d links (%+.1f%% vs even)\n", name, c, 100*(float64(c)-even)/even)
	}

	if savePath == "" {
		return nil
	}
	manifest := struct {
		Members    []string       `json:"members"`
		VNodes     int            `json:"vnodes"`
		Links      int            `json:"links"`
		OwnedLinks map[string]int `json:"owned_links"`
	}{Members: names, VNodes: ring.State().VNodes, Links: len(domains), OwnedLinks: counts}
	path := savePath + ".fleet.json"
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(manifest); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote fleet manifest to %s\n", path)
	return nil
}
