// Command benchjson turns `go test -bench` output into a JSON
// benchmark record, so each PR's perf numbers land in a diffable file
// (the perf trajectory the Makefile's bench target maintains in
// BENCH_PR2.json). Input lines stream through to stdout unchanged, so
// it sits at the end of a pipe without hiding the run:
//
//	go test -bench=. -benchmem -run='^$' ./... | benchjson -o BENCH_PR2.json
//
// Each benchmark maps name → {ns_per_op, b_per_op, allocs_per_op,
// plus any custom -benchmem/ReportMetric units}. The -cpu suffix
// ("-8") is stripped so records diff across machines with different
// core counts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches "BenchmarkName-8   123   456 ns/op   7 B/op ..."
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("o", "BENCH_PR2.json", "output JSON file")
	flag.Parse()

	results := make(map[string]map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := stripCPUSuffix(m[1])
		metrics := parseMetrics(m[3])
		if len(metrics) == 0 {
			continue
		}
		if n, err := strconv.ParseFloat(m[2], 64); err == nil {
			metrics["iterations"] = n
		}
		results[name] = metrics
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines seen; not writing", *out)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// stripCPUSuffix drops the trailing "-<gomaxprocs>" go test appends.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseMetrics reads the "<value> <unit>" pairs after the iteration
// count: ns/op, B/op, allocs/op, and any ReportMetric units.
func parseMetrics(rest string) map[string]float64 {
	fields := strings.Fields(rest)
	metrics := make(map[string]float64)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			metrics["ns_per_op"] = v
		case "B/op":
			metrics["b_per_op"] = v
		case "allocs/op":
			metrics["allocs_per_op"] = v
		default:
			metrics[unit] = v
		}
	}
	return metrics
}
