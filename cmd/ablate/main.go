// Command ablate runs the counterfactual experiments behind the
// paper's implications (DESIGN.md §7) and prints one table per sweep:
// the §4.1 availability-timeout tradeoff, the §4.2 redirect-validation
// parameters, the §5.1 capture-on-post delay, the §3 re-check cadence,
// and the WaybackMedic intervention.
//
// With -flaky > 0 the generated universe gets transient-fault windows
// and an extra sweep compares fetch policies (single GET vs retries vs
// confirmation checks) by false-dead rate; -smoke runs only that sweep
// and exits non-zero unless the rate strictly decreases up the ladder.
//
// Usage:
//
//	ablate [-scale f] [-seed n] [-flaky f] [-flaky-rate f] [-smoke]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"permadead/internal/ablation"
	"permadead/internal/archive"
	"permadead/internal/core"
	"permadead/internal/fetch"
	"permadead/internal/figures"
	"permadead/internal/simweb"
	"permadead/internal/stats"
	"permadead/internal/worldgen"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.1, "universe scale")
		seed      = flag.Int64("seed", 1, "generation seed")
		figsDir   = flag.String("figs", "", "write sweep SVG figures into this directory")
		flaky     = flag.Float64("flaky", 0, "fraction of sites given transient-fault windows (enables the retry-policy ablation)")
		flakyRate = flag.Float64("flaky-rate", 0.5, "per-attempt failure probability inside a fault window")
		smoke     = flag.Bool("smoke", false, "run only the retry-policy ablation and fail unless the false-dead rate strictly decreases single-GET → retry → confirmation")
		scenarios = flag.Bool("scenarios", false, "run only the per-scenario × per-policy false-dead grid (flaky, paywall, geo-block, parking; forces -flaky 0 — the grid plants its own windows) and fail unless the grid matches the expected robustness shape")
	)
	flag.Parse()

	if *smoke && *flaky <= 0 {
		fmt.Fprintln(os.Stderr, "ablate: -smoke requires fault injection (-flaky > 0)")
		os.Exit(2)
	}

	params := worldgen.DefaultParams().Scale(*scale)
	params.Seed = *seed
	params.FlakySiteFrac = *flaky
	params.FlakyRate = *flakyRate
	if *scenarios {
		// The grid's scenario axis includes its own flaky windows;
		// generation-time ones would contaminate every other cell.
		params.FlakySiteFrac = 0
	}
	fmt.Fprintf(os.Stderr, "generating universe (scale %.2f)...\n", *scale)
	u := worldgen.Generate(params)

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.SampleSize = params.SampleSize
	cfg.CrawlArticles = 0
	study := &core.Study{
		Config: cfg,
		Wiki:   u.Wiki,
		Arch:   u.Archive,
		Client: fetch.New(simweb.NewTransport(u.World, cfg.StudyTime)),
		Ranks:  u.World,
	}
	records := study.Collect()
	fmt.Fprintf(os.Stderr, "sampled %d permanently dead links\n\n", len(records))
	n := float64(len(records))
	_ = context.Background()

	if *scenarios {
		runScenarioGrid(u, records)
		return
	}

	// --- §3: false-dead rate vs retry policy (fault-injected universe). ---
	var falseDeadPts []ablation.FalseDeadPoint
	if *flaky > 0 {
		falseDeadPts = ablation.FalseDeadSweep(u.World, records, u.Params.StudyTime,
			ablation.DefaultRetryPolicySpecs())
		t9 := stats.Table{
			Title:   "Ablation §3: false-dead rate vs retry policy (fault-injected universe)",
			Headers: []string{"Policy", "Truly alive", "False dead", "Rate", "Fetches spent"},
		}
		for _, pt := range falseDeadPts {
			t9.AddRow(pt.Label, fmt.Sprint(pt.TrulyAlive),
				fmt.Sprint(pt.FalseDead), fmt.Sprintf("%.1f%%", pt.Rate*100),
				fmt.Sprint(pt.Fetches))
		}
		fmt.Println(t9.String())
	}

	if *smoke {
		if err := writeFigs(*figsDir, figures.FalseDeadFigure(falseDeadPts)); err != nil {
			fmt.Fprintf(os.Stderr, "ablate: %v\n", err)
			os.Exit(1)
		}
		if err := checkMonotone(falseDeadPts); err != nil {
			fmt.Fprintf(os.Stderr, "ablate: smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "smoke OK: false-dead rate strictly decreases single-GET → retry → confirmation")
		return
	}

	timeoutPts := ablation.TimeoutSweep(u.Archive, records, []time.Duration{
		500 * time.Millisecond, time.Second, ablation.Baseline.AvailabilityTimeout,
		5 * time.Second, 30 * time.Second, 0,
	})
	delayPts := ablation.ArchiveDelaySweep(u.World, records,
		[]int{0, 7, 30, 90, 180, 365, 730, 1460})
	recheckPts := ablation.RecheckSweep(u.World, records, u.Params.StudyTime,
		[]int{0, 30, 90, 180, 365})

	// --- §4.1: availability-lookup timeout. ---
	t1 := stats.Table{
		Title:   "Ablation §4.1: IABot availability-lookup timeout",
		Headers: []string{"Timeout", "Copies found", "Copies missed", "Total lookup time"},
	}
	for _, pt := range timeoutPts {
		label := pt.Timeout.String()
		if pt.Timeout == 0 {
			label = "none (WaybackMedic)"
		} else if pt.Timeout == ablation.Baseline.AvailabilityTimeout {
			label += " (production)"
		}
		t1.AddRow(label, fmt.Sprint(pt.FoundCopies),
			fmt.Sprintf("%d (%.1f%%)", pt.Missed, float64(pt.Missed)/n*100),
			pt.LookupCost.Round(time.Second).String())
	}
	fmt.Println(t1.String())

	// --- §4.2: redirect validation parameters. ---
	t2 := stats.Table{
		Title:   "Ablation §4.2: archived-redirect validation parameters",
		Headers: []string{"Window (days)", "Max siblings", "Validated", "Condemned"},
	}
	for _, pt := range ablation.RedirectSweep(u.Archive, records,
		[]int{30, 90, 180, 365}, []int{2, 6, 12}) {
		marker := ""
		if pt.WindowDays == 90 && pt.MaxSiblings == 6 {
			marker = " (paper)"
		}
		t2.AddRow(fmt.Sprintf("%d%s", pt.WindowDays, marker), fmt.Sprint(pt.MaxSiblings),
			fmt.Sprintf("%d (%.1f%%)", pt.Validated, float64(pt.Validated)/n*100),
			fmt.Sprint(pt.Condemned))
	}
	fmt.Println(t2.String())

	// --- §5.1: capture-on-post delay. ---
	t3 := stats.Table{
		Title:   "Ablation §5.1: capture delay after posting",
		Headers: []string{"Delay (days)", "Would have usable copy", "Host unreachable"},
	}
	for _, pt := range delayPts {
		t3.AddRow(fmt.Sprint(pt.DelayDays),
			fmt.Sprintf("%d (%.1f%%)", pt.WouldHaveUsableCopy, float64(pt.WouldHaveUsableCopy)/n*100),
			fmt.Sprint(pt.Unreachable))
	}
	fmt.Println(t3.String())

	// --- §3: re-check cadence for marked links. ---
	t4 := stats.Table{
		Title:   "Ablation §3: re-check cadence for links marked dead",
		Headers: []string{"Interval (days)", "Answer 200 again", "Genuinely recovered", "Fetches spent", "Mean days to recovery"},
	}
	for _, pt := range recheckPts {
		label := fmt.Sprint(pt.IntervalDays)
		if pt.IntervalDays == 0 {
			label = "never (production)"
		}
		t4.AddRow(label, fmt.Sprint(pt.Recovered), fmt.Sprint(pt.Genuine),
			fmt.Sprint(pt.Fetches), fmt.Sprintf("%.0f", pt.MeanDaysToRecovery))
	}
	fmt.Println(t4.String())

	// --- §5.2 implication (b): query-parameter permutation rescue. ---
	// Probe through a memo so repeated URLs (and any later experiment
	// sharing it) pay for one canonicalizing probe per link.
	qr := ablation.QueryPermutationRescue(archive.NewMemo(u.Archive), records)
	t6 := stats.Table{
		Title:   "Extension §5.2(b): rescuing query URLs via parameter-order permutations",
		Headers: []string{"Quantity", "Value"},
	}
	t6.AddRow("Never-archived links with query parameters", fmt.Sprint(qr.QueryLinks))
	t6.AddRow("…with an archived permuted-order variant", fmt.Sprintf("%d (%.1f%%)",
		qr.Rescuable, pctOf(qr.Rescuable, qr.QueryLinks)))
	fmt.Println(t6.String())

	// --- Edit-time link checking. ---
	ec := ablation.EditTimeCheck(u.World, records)
	t7 := stats.Table{
		Title:   "Extension: edit-time link check (alert users posting dead URLs)",
		Headers: []string{"Quantity", "Value"},
	}
	t7.AddRow("Links probed on their posting day", fmt.Sprint(ec.Checked))
	t7.AddRow("Would have been flagged at edit time", fmt.Sprintf("%d (%.1f%%)",
		ec.WouldHaveFlagged, pctOf(ec.WouldHaveFlagged, ec.Checked)))
	t7.AddRow("…of which unreachable (DNS/timeout)", fmt.Sprint(ec.FlaggedUnreachable))
	fmt.Println(t7.String())

	// --- Bot cadence (generation-level design knob). ---
	sc := ablation.ScanIntervalSweep(worldgen.DefaultParams().Scale(0.03), []int{60, 150, 365})
	t8 := stats.Table{
		Title:   "Ablation: IABot scan cadence (0.03-scale regenerations)",
		Headers: []string{"Interval (days)", "Mean days death→mark", "P90", "Fetches over timeline"},
	}
	for _, pt := range sc {
		marker := ""
		if pt.IntervalDays == 150 {
			marker = " (default)"
		}
		t8.AddRow(fmt.Sprintf("%d%s", pt.IntervalDays, marker),
			fmt.Sprintf("%.0f", pt.MeanMarkLatency),
			fmt.Sprintf("%.0f", pt.P90MarkLatency),
			fmt.Sprint(pt.LinksChecked))
	}
	fmt.Println(t8.String())

	// --- §4.1: the WaybackMedic intervention. ---
	res := ablation.MedicExperiment(u.Wiki, u.Archive, u.Params.StudyTime)
	t5 := stats.Table{
		Title:   "WaybackMedic intervention (§4.1; the real run patched 20,080 links)",
		Headers: []string{"Variant", "Rescued (200 copies)", "Rescued (redirect copies)", "Unfixable"},
	}
	t5.AddRow("untimed lookups", fmt.Sprint(res.Basic.Patched), "-", fmt.Sprint(res.Basic.Unfixable))
	t5.AddRow("+ validated redirects (§4.2)", fmt.Sprint(res.WithRedirects.Patched),
		fmt.Sprint(res.WithRedirects.RedirectPatched), fmt.Sprint(res.WithRedirects.Unfixable))
	fmt.Println(t5.String())

	figs := figures.AblationSweeps(timeoutPts, delayPts, recheckPts)
	for name, svg := range figures.FalseDeadFigure(falseDeadPts) {
		figs[name] = svg
	}
	if err := writeFigs(*figsDir, figs); err != nil {
		fmt.Fprintf(os.Stderr, "ablate: %v\n", err)
		os.Exit(1)
	}
}

// runScenarioGrid sweeps the per-scenario × per-policy false-dead
// grid, prints it, emits one `go test -bench`-format line per cell
// (so `ablate -scenarios | benchjson` lands the grid in the PR's
// benchmark record), and enforces its expected shape.
func runScenarioGrid(u *worldgen.Universe, records []core.LinkRecord) {
	grid := ablation.ScenarioSweep(u.World, records, u.Params.StudyTime,
		ablation.DefaultScenarios(), ablation.DefaultRetryPolicySpecs())

	t := stats.Table{
		Title:   "Ablation: false-dead grid, lifecycle scenario × checking policy",
		Headers: []string{"Scenario", "Policy", "Truly alive", "False dead", "Rate", "Fetches"},
	}
	for i, sc := range grid.Scenarios {
		for j, spec := range grid.Specs {
			pt := grid.Cells[i][j]
			t.AddRow(sc.Label, spec.Label, fmt.Sprint(pt.TrulyAlive),
				fmt.Sprint(pt.FalseDead), fmt.Sprintf("%.1f%%", pt.Rate*100),
				fmt.Sprint(pt.Fetches))
		}
	}
	fmt.Println(t.String())

	for i, sc := range grid.Scenarios {
		for j, spec := range grid.Specs {
			pt := grid.Cells[i][j]
			fmt.Printf("BenchmarkScenario/%s/%s 1 %d false-dead %.4f rate %d fetches\n",
				sc.Key, spec.Key, pt.FalseDead, pt.Rate, pt.Fetches)
		}
	}

	if err := checkGrid(&grid); err != nil {
		fmt.Fprintf(os.Stderr, "ablate: scenario grid FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "scenario grid OK: retries rescue flaky, confirmation rescues paywall/geo-block, nothing rescues parking")
}

// checkGrid enforces the grid's robustness shape: the retry ladder
// strictly improves on flaky windows (the PR 5 invariant), same-day
// retries do NOT help against rate-1 paywalls/geo-blocks while spaced
// confirmation escapes their windows entirely, and parking (a 200
// with a parked body) fools every status-based rung equally.
func checkGrid(g *ablation.ScenarioGrid) error {
	cell := func(s, p string) (*ablation.FalseDeadPoint, error) {
		c := g.Cell(s, p)
		if c == nil {
			return nil, fmt.Errorf("grid is missing cell %s/%s", s, p)
		}
		return c, nil
	}

	for _, key := range []string{"single", "retry", "confirm"} {
		if _, err := cell("flaky", key); err != nil {
			return err
		}
	}
	fs, _ := cell("flaky", "single")
	fr, _ := cell("flaky", "retry")
	fc, _ := cell("flaky", "confirm")
	if !(fs.FalseDead > fr.FalseDead && fr.FalseDead > fc.FalseDead) {
		return fmt.Errorf("flaky row should strictly decrease up the ladder, got %d/%d/%d",
			fs.FalseDead, fr.FalseDead, fc.FalseDead)
	}

	for _, key := range []string{"paywall", "geoblock"} {
		single, err := cell(key, "single")
		if err != nil {
			return err
		}
		retry, err := cell(key, "retry")
		if err != nil {
			return err
		}
		confirm, err := cell(key, "confirm")
		if err != nil {
			return err
		}
		if single.FalseDead == 0 {
			return fmt.Errorf("%s scenario did not bite (0 false-dead under single GET)", key)
		}
		if retry.FalseDead != single.FalseDead {
			return fmt.Errorf("same-day retries should not rescue rate-1 %s links, got %d vs %d",
				key, retry.FalseDead, single.FalseDead)
		}
		if confirm.FalseDead != 0 {
			return fmt.Errorf("spaced confirmation should escape the %s window, got %d false-dead",
				key, confirm.FalseDead)
		}
	}

	ps, err := cell("parking", "single")
	if err != nil {
		return err
	}
	pr, _ := cell("parking", "retry")
	pc, _ := cell("parking", "confirm")
	if pr == nil || pc == nil {
		return fmt.Errorf("grid is missing parking cells")
	}
	if ps.FalseDead == 0 {
		return fmt.Errorf("parking scenario did not bite")
	}
	if ps.FalseDead != pr.FalseDead || ps.FalseDead != pc.FalseDead {
		return fmt.Errorf("parking should fool every status-based rung equally, got %d/%d/%d",
			ps.FalseDead, pr.FalseDead, pc.FalseDead)
	}
	return nil
}

// writeFigs writes each rendered SVG into dir (no-op when dir or figs
// is empty).
func writeFigs(dir string, figs map[string]string) error {
	if dir == "" || len(figs) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, svg := range figs {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}

// checkMonotone enforces the smoke invariant: each step up the retry
// ladder must strictly reduce the false-dead count.
func checkMonotone(pts []ablation.FalseDeadPoint) error {
	if len(pts) < 2 {
		return fmt.Errorf("retry sweep produced %d points; need at least 2", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		prev, cur := pts[i-1], pts[i]
		if cur.FalseDead >= prev.FalseDead {
			return fmt.Errorf("false-dead count did not strictly decrease: %q=%d vs %q=%d",
				prev.Label, prev.FalseDead, cur.Label, cur.FalseDead)
		}
	}
	return nil
}

func pctOf(n, of int) float64 {
	if of == 0 {
		return 0
	}
	return float64(n) / float64(of) * 100
}
