// Command deadlinkstudy reproduces the IMC 2022 study end to end: it
// generates the simulated universe (web + Wikipedia + archive), runs
// the IABot timeline, executes the measurement pipeline, and prints
// every table and figure the paper reports, followed by a
// paper-vs-measured comparison.
//
// Usage:
//
//	deadlinkstudy [-scale f] [-seed n] [-sample n] [-random] [-quiet]
//
// -scale 1.0 regenerates the full 10,000-link study (≈30s of timeline
// simulation); -scale 0.1 gives a 1,000-link study in a few seconds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"permadead/internal/core"
	"permadead/internal/fetch"
	"permadead/internal/figures"
	"permadead/internal/persist"
	mdreport "permadead/internal/report"
	"permadead/internal/simweb"
	"permadead/internal/worldgen"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.25, "universe scale relative to the paper's 10,000-link study")
		seed    = flag.Int64("seed", 1, "generation and sampling seed")
		sample  = flag.Int("sample", 0, "sample size override (0 = scaled default)")
		random  = flag.Bool("random", false, "sample links across random articles (the paper's September 2022 representativeness check)")
		quiet   = flag.Bool("quiet", false, "print only the paper-vs-measured comparison")
		figs    = flag.String("figs", "", "also write SVG figures into this directory")
		load    = flag.String("load", "", "measure a universe saved by 'worldgen -save' instead of generating one")
		paged   = flag.Bool("universe.paged", true, "mmap a paged (format v4) universe file and read it page-on-demand; =false reads the file fully into memory")
		md      = flag.String("md", "", "write a Markdown experiment report to this file")
		compare = flag.Bool("compare", false, "with -figs: also run the random sample and write both-sample overlays (the paper's Figure 3/4 style)")
		timeout = flag.Duration("timeout", 15*time.Minute, "overall run timeout")
		conc    = flag.Int("conc", core.DefaultConfig().Concurrency, "worker count for the fetch and analysis stages (1 = sequential; any value yields the same report)")

		retries        = flag.Int("retries", 1, "max fetch attempts per live check (1 = the paper's single GET)")
		confirmChecks  = flag.Int("confirm-checks", 1, "IABot-style confirmation checks before a dead verdict (1 = single check)")
		confirmSpacing = flag.Int("confirm-spacing", 30, "simulated days between confirmation checks")
		flaky          = flag.Float64("flaky", 0, "fraction of generated sites given transient-fault windows (0 = off)")
		flakyRate      = flag.Float64("flaky-rate", 0.5, "per-attempt failure probability inside a fault window")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var bundle *persist.Bundle
	if *load != "" {
		start := time.Now()
		b, err := openUniverse(*load, *paged)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deadlinkstudy: %v\n", err)
			os.Exit(1)
		}
		bundle = b
		fmt.Fprintf(os.Stderr, "loaded universe from %s in %.3fs\n", *load, time.Since(start).Seconds())
	} else {
		params := worldgen.DefaultParams().Scale(*scale)
		params.Seed = *seed
		params.FlakySiteFrac = *flaky
		params.FlakyRate = *flakyRate
		params.Progress = func(stage string, done, total int) {
			if total > 0 {
				fmt.Fprintf(os.Stderr, "\r  %s: %d/%d        ", stage, done, total)
			} else {
				fmt.Fprintf(os.Stderr, "\r  %-40s\n", stage)
			}
		}
		fmt.Fprintf(os.Stderr, "generating universe (scale %.2f, seed %d)...\n", *scale, *seed)
		start := time.Now()
		u := worldgen.Generate(params)
		fmt.Fprintf(os.Stderr, "generated in %.1fs\n%s", time.Since(start).Seconds(), u.Summary())
		bundle = persist.FromUniverse(u)
	}
	defer bundle.Close()

	// World generation is done; freeze the archive so the parallel
	// analysis stages read the freeze-time CDX indexes lock-free
	// (idempotent: worldgen.Generate and persist.Load already froze).
	bundle.Archive.Freeze()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Concurrency = *conc
	cfg.SampleSize = bundle.Params.SampleSize
	if *sample > 0 {
		cfg.SampleSize = *sample
	}
	cfg.CrawlArticles = 0
	cfg.RandomArticles = *random
	cfg.Retries = *retries
	cfg.ConfirmChecks = *confirmChecks
	cfg.ConfirmSpacingDays = *confirmSpacing

	study := &core.Study{
		Config: cfg,
		Wiki:   bundle.Wiki,
		Arch:   bundle.Archive,
		Client: fetch.New(simweb.NewTransport(bundle.World, cfg.StudyTime)),
		Ranks:  bundle.World,
	}

	fmt.Fprintf(os.Stderr, "running study pipeline...\n")
	start := time.Now()
	report, err := study.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deadlinkstudy: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "measured %d links in %.1fs\n\n", report.N(), time.Since(start).Seconds())

	if !*quiet {
		fmt.Println(report.Render())
		fmt.Println()
	}
	fmt.Println(report.RenderComparison())

	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deadlinkstudy: %v\n", err)
			os.Exit(1)
		}
		err = mdreport.WriteMarkdown(f, report, mdreport.Options{
			Title:          "Experiments — paper vs. measured",
			Command:        strings.Join(os.Args, " "),
			IncludeFigures: true,
		})
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "deadlinkstudy: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote Markdown report to %s\n", *md)
	}

	if *figs != "" {
		paths, err := figures.WriteAll(report, *figs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deadlinkstudy: %v\n", err)
			os.Exit(1)
		}
		if *compare {
			cfg2 := cfg
			cfg2.RandomArticles = true
			cfg2.Seed = cfg.Seed + 1000
			study2 := &core.Study{
				Config: cfg2,
				Wiki:   bundle.Wiki,
				Arch:   bundle.Archive,
				Client: fetch.New(simweb.NewTransport(bundle.World, cfg.StudyTime)),
				Ranks:  bundle.World,
			}
			fmt.Fprintf(os.Stderr, "running random representativeness sample...\n")
			report2, err := study2.Run(ctx)
			if err != nil {
				fmt.Fprintf(os.Stderr, "deadlinkstudy: %v\n", err)
				os.Exit(1)
			}
			for name, svg := range figures.CompareReport(report, report2) {
				path := filepath.Join(*figs, name)
				if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "deadlinkstudy: %v\n", err)
					os.Exit(1)
				}
				paths = append(paths, path)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d SVG figures to %s\n", len(paths), *figs)
	}
}

// openUniverse loads a saved universe. Paged (format v4) files are
// mmap'd and read page-on-demand unless -universe.paged=false, which
// forces a full read into memory; gob (v3) files always load fully.
func openUniverse(path string, paged bool) (*persist.Bundle, error) {
	if paged {
		return persist.Open(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return persist.Load(f)
}
