// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (see DESIGN.md §4 for the experiment index), plus the
// ablation sweeps of DESIGN.md §7 and micro-benchmarks of the hot
// components.
//
// The figure benchmarks share one generated universe and re-run the
// pipeline stage that produces the figure; the headline statistic of
// each figure is attached as a custom benchmark metric so the "shape"
// result is visible in the -bench output.
//
//	go test -bench=. -benchmem
package permadead

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"permadead/internal/ablation"
	"permadead/internal/core"
	"permadead/internal/fetch"
	"permadead/internal/shingle"
	"permadead/internal/simweb"
	"permadead/internal/softerror"
	"permadead/internal/stats"
	"permadead/internal/urlutil"
	"permadead/internal/wikitext"
	"permadead/internal/worldgen"
)

// benchScale sizes the shared benchmark universe: 0.1 → a 1,000-link
// study, generated once in a few seconds.
const benchScale = 0.1

var (
	benchOnce   sync.Once
	benchU      *worldgen.Universe
	benchStudy  *core.Study
	benchReport *core.Report
)

func benchSetup(b *testing.B) (*worldgen.Universe, *core.Study, *core.Report) {
	b.Helper()
	benchOnce.Do(func() {
		benchU = Generate(Options{Scale: benchScale, Seed: 1})
		benchStudy = Study(benchU, Options{Seed: 1})
		r, err := benchStudy.Run(context.Background())
		if err != nil {
			panic(err)
		}
		benchReport = r
	})
	return benchU, benchStudy, benchReport
}

// freshReport returns a Report pre-populated with the collected sample
// so a single stage can run against it.
func freshReport(s *core.Study, base *core.Report) *core.Report {
	return &core.Report{Config: s.Config, Records: base.Records}
}

// --- Generation and dataset (§2.4) ---

// BenchmarkGenerateUniverse measures building and executing a complete
// (small) universe: web, wiki, archive, capture services, and the full
// IABot timeline.
func BenchmarkGenerateUniverse(b *testing.B) {
	p := worldgen.DefaultParams().Scale(0.02)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 100)
		u := worldgen.Generate(p)
		if len(u.Plan.Links) == 0 {
			b.Fatal("empty universe")
		}
	}
}

// BenchmarkDataset reproduces the §2.4 collection: crawl the tracking
// category, mine edit histories, filter to IABot-marked links, sample.
func BenchmarkDataset(b *testing.B) {
	_, s, r := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		recs := s.Collect()
		n = len(recs)
	}
	b.ReportMetric(float64(n), "links")
	b.ReportMetric(float64(r.NumDomains), "domains")
}

// BenchmarkFigure3a regenerates the per-domain URL-count CDF.
func BenchmarkFigure3a(b *testing.B) {
	_, s, base := benchSetup(b)
	b.ResetTimer()
	var oneURL float64
	for i := 0; i < b.N; i++ {
		r := freshReport(s, base)
		s.DatasetStats(r)
		oneURL = r.URLsPerDomain.At(1)
	}
	b.ReportMetric(oneURL*100, "%domains-with-1-url")
}

// BenchmarkFigure3b regenerates the site-ranking CDF.
func BenchmarkFigure3b(b *testing.B) {
	_, s, base := benchSetup(b)
	b.ResetTimer()
	var median float64
	for i := 0; i < b.N; i++ {
		r := freshReport(s, base)
		s.DatasetStats(r)
		median = r.SiteRanks.Quantile(0.5)
	}
	b.ReportMetric(median, "median-rank")
}

// BenchmarkFigure3c regenerates the posting-date CDF.
func BenchmarkFigure3c(b *testing.B) {
	_, s, base := benchSetup(b)
	b.ResetTimer()
	var after2015 float64
	for i := 0; i < b.N; i++ {
		r := freshReport(s, base)
		s.DatasetStats(r)
		after2015 = 1 - r.PostYears.At(2016)
	}
	b.ReportMetric(after2015*100, "%posted-after-2015")
}

// BenchmarkDatasetRepresentativeness reproduces the §2.4 check: a
// second, random sample whose distributions must match the
// alphabetical dataset (reported as the KS statistic on posting dates).
func BenchmarkDatasetRepresentativeness(b *testing.B) {
	u, _, base := benchSetup(b)
	b.ResetTimer()
	var ks float64
	for i := 0; i < b.N; i++ {
		s2 := Study(u, Options{Seed: int64(i + 5), RandomArticles: true})
		r2 := freshReport(s2, &core.Report{Config: s2.Config, Records: s2.Collect()})
		s2.DatasetStats(r2)
		ks = stats.KS(base.PostYears, r2.PostYears)
	}
	b.ReportMetric(ks, "ks-statistic")
}

// --- Figure 4 and §3 ---

// BenchmarkFigure4 regenerates the live-web outcome breakdown: one GET
// per sampled link plus the soft-404 probes for the 200s.
func BenchmarkFigure4(b *testing.B) {
	_, s, base := benchSetup(b)
	ctx := context.Background()
	b.ResetTimer()
	var frac200 float64
	for i := 0; i < b.N; i++ {
		r := freshReport(s, base)
		if err := s.LiveCheck(ctx, r); err != nil {
			b.Fatal(err)
		}
		frac200 = r.LiveBreakdown.Fraction("200")
	}
	b.ReportMetric(frac200*100, "%status-200")
}

// BenchmarkSection3 isolates the soft-404 detection over the sample's
// 200-status links (the §3 "are they really dead?" probe).
func BenchmarkSection3(b *testing.B) {
	_, s, base := benchSetup(b)
	ctx := context.Background()
	// Pre-fetch once; the bench measures the probes.
	r := freshReport(s, base)
	if err := s.LiveCheck(ctx, r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var functional int
	for i := 0; i < b.N; i++ {
		functional = 0
		det := softerror.NewDetector(s.Client)
		for _, res := range r.LiveResults {
			if res.Category != fetch.Cat200 {
				continue
			}
			if v := det.Check(ctx, res.URL, res); !v.Broken {
				functional++
			}
		}
	}
	b.ReportMetric(float64(functional)/float64(r.N())*100, "%functional")
}

// --- §4 ---

// BenchmarkSection41 regenerates the §4.1/§4.2 archive-history
// classification (pre-mark copies, availability misses, redirect
// copies).
func BenchmarkSection41(b *testing.B) {
	_, s, base := benchSetup(b)
	b.ResetTimer()
	var pre200 int
	for i := 0; i < b.N; i++ {
		r := freshReport(s, base)
		s.ArchiveAnalysis(r)
		pre200 = len(r.Pre200)
	}
	b.ReportMetric(float64(pre200)/float64(base.N())*100, "%timeout-missed")
}

// BenchmarkSection42 isolates the redirect validation over the links
// with 3xx copies.
func BenchmarkSection42(b *testing.B) {
	u, _, base := benchSetup(b)
	b.ResetTimer()
	var pts []ablation.RedirectPoint
	for i := 0; i < b.N; i++ {
		pts = ablation.RedirectSweep(u.Archive, base.Records, []int{90}, []int{6})
	}
	b.ReportMetric(float64(pts[0].Validated)/float64(base.N())*100, "%validated")
}

// --- §5.1 / Figure 5 ---

// BenchmarkFigure5 regenerates the posting→first-capture gap CDF.
func BenchmarkFigure5(b *testing.B) {
	_, s, base := benchSetup(b)
	b.ResetTimer()
	var median float64
	for i := 0; i < b.N; i++ {
		r := freshReport(s, base)
		s.ArchiveAnalysis(r)
		s.TemporalAnalysis(r)
		median = r.GapCDF.Quantile(0.5)
	}
	b.ReportMetric(median, "median-gap-days")
}

// BenchmarkSection51 is the full temporal partition (6,936/1,982
// split, pre-posting copies, same-day captures).
func BenchmarkSection51(b *testing.B) {
	_, s, base := benchSetup(b)
	b.ResetTimer()
	var noCopies int
	for i := 0; i < b.N; i++ {
		r := freshReport(s, base)
		s.ArchiveAnalysis(r)
		s.TemporalAnalysis(r)
		noCopies = len(r.NoCopies)
	}
	b.ReportMetric(float64(noCopies)/float64(base.N())*100, "%never-archived")
}

// --- §5.2 / Figure 6 ---

// BenchmarkFigure6 regenerates the directory/hostname coverage CDFs
// for the never-archived links (CDX queries).
func BenchmarkFigure6(b *testing.B) {
	_, s, base := benchSetup(b)
	b.ResetTimer()
	var zeroDir int
	for i := 0; i < b.N; i++ {
		r := freshReport(s, base)
		s.ArchiveAnalysis(r)
		s.TemporalAnalysis(r)
		s.SpatialAnalysis(r)
		zeroDir = r.ZeroDir
	}
	b.ReportMetric(float64(zeroDir), "zero-dir-links")
}

// BenchmarkSection52 isolates the edit-distance typo probe, the most
// expensive spatial step.
func BenchmarkSection52(b *testing.B) {
	_, s, base := benchSetup(b)
	r := freshReport(s, base)
	s.ArchiveAnalysis(r)
	s.TemporalAnalysis(r)
	b.ResetTimer()
	var typos int
	for i := 0; i < b.N; i++ {
		r2 := freshReport(s, base)
		r2.Pre200 = r.Pre200
		r2.NoCopies = r.NoCopies
		s.SpatialAnalysis(r2)
		typos = r2.Typos
	}
	b.ReportMetric(float64(typos), "typos")
}

// --- Concurrency scaling (§4–§5 parallel fan-out) ---

// analysisConcurrencies are the fan-outs the scaling benchmarks
// compare: sequential, a modest pool, and the default.
var analysisConcurrencies = []int{1, 8, 32}

// BenchmarkArchiveAnalysisParallel measures the §4 + §5.1 archive-side
// stages at increasing worker counts. Each iteration uses a fresh
// Study (cold memo), so the numbers include the real per-run CDX scan
// cost rather than a pre-warmed cache.
func BenchmarkArchiveAnalysisParallel(b *testing.B) {
	u, _, base := benchSetup(b)
	for _, conc := range analysisConcurrencies {
		b.Run(fmt.Sprintf("conc-%d", conc), func(b *testing.B) {
			b.ResetTimer()
			var pre200 int
			for i := 0; i < b.N; i++ {
				s := Study(u, Options{Seed: 1, Concurrency: conc})
				r := freshReport(s, base)
				s.ArchiveAnalysis(r)
				s.TemporalAnalysis(r)
				pre200 = len(r.Pre200)
			}
			b.ReportMetric(float64(pre200), "pre200-links")
		})
	}
}

// BenchmarkSpatialParallel measures the §5.2 spatial stage (Figure 6
// coverage counts + typo probe) at increasing worker counts, with the
// §4/§5.1 inputs precomputed once.
func BenchmarkSpatialParallel(b *testing.B) {
	u, s0, base := benchSetup(b)
	pre := freshReport(s0, base)
	s0.ArchiveAnalysis(pre)
	s0.TemporalAnalysis(pre)
	for _, conc := range analysisConcurrencies {
		b.Run(fmt.Sprintf("conc-%d", conc), func(b *testing.B) {
			b.ResetTimer()
			var typos int
			for i := 0; i < b.N; i++ {
				s := Study(u, Options{Seed: 1, Concurrency: conc})
				r := freshReport(s, base)
				r.Pre200 = pre.Pre200
				r.NoCopies = pre.NoCopies
				s.SpatialAnalysis(r)
				typos = r.Typos
			}
			b.ReportMetric(float64(typos), "typos")
		})
	}
}

// --- Ablations (DESIGN.md §7) ---

// BenchmarkAblationTimeout sweeps IABot's availability timeout (§4.1).
func BenchmarkAblationTimeout(b *testing.B) {
	u, _, base := benchSetup(b)
	timeouts := []time.Duration{time.Second, 2 * time.Second, 10 * time.Second, 0}
	b.ResetTimer()
	var missed int
	for i := 0; i < b.N; i++ {
		pts := ablation.TimeoutSweep(u.Archive, base.Records, timeouts)
		missed = pts[1].Missed
	}
	b.ReportMetric(float64(missed), "missed@2s")
}

// BenchmarkAblationRedirect sweeps the §4.2 validation parameters.
func BenchmarkAblationRedirect(b *testing.B) {
	u, _, base := benchSetup(b)
	b.ResetTimer()
	var validated int
	for i := 0; i < b.N; i++ {
		pts := ablation.RedirectSweep(u.Archive, base.Records, []int{30, 90, 365}, []int{2, 6})
		validated = pts[3].Validated // window 90, siblings 6 — the paper's point
	}
	b.ReportMetric(float64(validated), "validated@paper-params")
}

// BenchmarkAblationArchiveDelay sweeps the §5.1 capture-on-post delay.
func BenchmarkAblationArchiveDelay(b *testing.B) {
	u, _, base := benchSetup(b)
	b.ResetTimer()
	var usable int
	for i := 0; i < b.N; i++ {
		pts := ablation.ArchiveDelaySweep(u.World, base.Records, []int{0, 30, 180, 365})
		usable = pts[0].WouldHaveUsableCopy
	}
	b.ReportMetric(float64(usable)/float64(base.N())*100, "%usable@day0")
}

// BenchmarkAblationRecheck sweeps the §3 re-check cadence.
func BenchmarkAblationRecheck(b *testing.B) {
	u, _, base := benchSetup(b)
	b.ResetTimer()
	var genuine int
	for i := 0; i < b.N; i++ {
		pts := ablation.RecheckSweep(u.World, base.Records, u.Params.StudyTime, []int{180})
		genuine = pts[0].Genuine
	}
	b.ReportMetric(float64(genuine), "genuine-recoveries@180d")
}

// BenchmarkWaybackMedic runs the §4.1 intervention (both variants)
// over a cloned wiki.
func BenchmarkWaybackMedic(b *testing.B) {
	u, _, _ := benchSetup(b)
	b.ResetTimer()
	var rescued int
	for i := 0; i < b.N; i++ {
		res := ablation.MedicExperiment(u.Wiki, u.Archive, u.Params.StudyTime)
		rescued = res.WithRedirects.Patched + res.WithRedirects.RedirectPatched
	}
	b.ReportMetric(float64(rescued), "rescued")
}

// --- Component micro-benchmarks ---

func BenchmarkFetchSimulatedPage(b *testing.B) {
	u, _, base := benchSetup(b)
	client := fetch.New(simweb.NewTransport(u.World, u.Params.StudyTime))
	ctx := context.Background()
	url := base.Records[0].URL
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.Fetch(ctx, url)
	}
}

func BenchmarkIABotArticleScan(b *testing.B) {
	u, _, _ := benchSetup(b)
	titles := u.Wiki.Titles()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Scans of already-processed articles: parse + skip decisions.
		u.Bot.ScanArticle(ctx, titles[i%len(titles)], u.Params.StudyTime) //nolint:errcheck
	}
}

func BenchmarkWikitextParse(b *testing.B) {
	u, _, _ := benchSetup(b)
	text := u.Wiki.Article(u.Wiki.Titles()[0]).Current().Text
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := wikitext.Parse(text)
		if len(doc.Nodes) == 0 {
			b.Fatal("empty parse")
		}
	}
}

func BenchmarkWikitextCitedLinks(b *testing.B) {
	u, _, _ := benchSetup(b)
	doc := u.Wiki.Article(u.Wiki.Titles()[0]).Current().Doc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc.CitedLinks()
	}
}

func BenchmarkAvailabilityQuery(b *testing.B) {
	u, _, base := benchSetup(b)
	rec := base.Records[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Archive.Closest(rec.URL, rec.Added, nil)
	}
}

func BenchmarkCDXDirectoryCount(b *testing.B) {
	u, _, base := benchSetup(b)
	url := base.Records[len(base.Records)/2].URL
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Archive.CountInDirectory(url)
	}
}

func BenchmarkShingleSimilarity(b *testing.B) {
	u, _, base := benchSetup(b)
	res := u.World.Get(base.Records[0].URL, u.Params.StudyTime)
	other := u.World.Get("http://"+base.Records[0].Host+"/", u.Params.StudyTime)
	b.SetBytes(int64(len(res.Body) + len(other.Body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shingle.Similarity(res.Body, other.Body)
	}
}

func BenchmarkEditDistance(b *testing.B) {
	a := "http://www.lnr.fr/top-14-orange-histoire-parc-des-princes-paris-26-may-1984.html"
	c := "http://www.lnr.fr/top-14-orange-histoire-parc-des-princes-paris-26-mai-1984.html"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if urlutil.EditDistance(a, c) != 1 {
			b.Fatal("unexpected distance")
		}
	}
}

// BenchmarkAblationScanInterval regenerates tiny universes under
// different bot cadences and reports the marking latency (the design
// knob behind "how long is a broken reference untagged?").
func BenchmarkAblationScanInterval(b *testing.B) {
	base := worldgen.DefaultParams().Scale(0.01)
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		base.Seed = int64(i + 31)
		pts := ablation.ScanIntervalSweep(base, []int{60, 150, 365})
		mean = pts[1].MeanMarkLatency
	}
	b.ReportMetric(mean, "mean-mark-latency-days@150d")
}
