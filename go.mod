module permadead

go 1.22
