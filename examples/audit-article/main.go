// Audit-article: build a small hand-crafted world and article, then
// watch InternetArchiveBot maintain it over the years — patching the
// reference that has a usable archived copy and marking the one that
// does not as permanently dead, exactly as in the paper's Figure 1.
//
//	go run ./examples/audit-article
package main

import (
	"context"
	"fmt"
	"log"

	"permadead/internal/archive"
	"permadead/internal/fetch"
	"permadead/internal/iabot"
	"permadead/internal/simclock"
	"permadead/internal/simweb"
	"permadead/internal/wikimedia"
)

func main() {
	// --- The web: two referenced pages, both of which will die. ---
	world := simweb.NewWorld()
	site := world.AddSite("www.mars-gazette.simnews", simclock.FromDate(2006, 1, 1))

	archived := site.AddPage("/science/express-mission.html", simclock.FromDate(2006, 3, 1))
	archived.DeletedAt = simclock.FromDate(2017, 6, 1)

	unarchived := site.AddPage("/science/orbiter-profile.html", simclock.FromDate(2006, 3, 1))
	unarchived.DeletedAt = simclock.FromDate(2017, 6, 1)

	// --- The archive: only the first page was ever captured. ---
	arch := archive.New()
	crawler := archive.NewCrawler(world, arch)
	if _, err := crawler.Capture("http://www.mars-gazette.simnews/science/express-mission.html",
		simclock.FromDate(2010, 5, 20)); err != nil {
		log.Fatal(err)
	}

	// --- The article, created in 2008 with both references. ---
	wiki := wikimedia.NewWiki()
	wiki.Create("Mars Express (simulated)", simclock.FromDate(2008, 2, 10), "SpaceEditor",
		`'''Mars Express''' is a simulated orbiter mission.

The mission was profiled in the Gazette.<ref>{{cite web|url=http://www.mars-gazette.simnews/science/express-mission.html|title=Express Mission|access-date=2008-02-10}}</ref>
A follow-up piece covered the orbiter.<ref>{{cite web|url=http://www.mars-gazette.simnews/science/orbiter-profile.html|title=Orbiter Profile|access-date=2008-02-10}}</ref>
`)

	// --- IABot scans in 2018, after both pages died. ---
	bot := iabot.New(wiki, arch, func(d simclock.Day) *fetch.Client {
		return fetch.New(simweb.NewTransport(world, d))
	})
	scanDay := simclock.FromDate(2018, 3, 1)
	edited, err := bot.ScanArticle(context.Background(), "Mars Express (simulated)", scanDay)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("IABot scan on %s (edited: %v)\n", scanDay, edited)
	st := bot.Stats()
	fmt.Printf("  checked %d links: %d broken, %d patched, %d marked permanently dead\n\n",
		st.LinksChecked, st.LinksBroken, st.Patched, st.MarkedDead)

	cur := wiki.Article("Mars Express (simulated)").Current()
	fmt.Println("article after the bot's edit:")
	fmt.Println("------------------------------")
	fmt.Println(cur.Text)

	// The study's view of each link, from the edit history.
	for _, url := range []string{
		"http://www.mars-gazette.simnews/science/express-mission.html",
		"http://www.mars-gazette.simnews/science/orbiter-profile.html",
	} {
		h, _ := wiki.HistoryOf("Mars Express (simulated)", url)
		fmt.Printf("history of %s:\n  added %s by %s", url, h.Added, h.AddedBy)
		if h.Patched {
			fmt.Printf("; patched with %s\n", h.ArchiveURL)
		} else if h.MarkedDead.Valid() {
			fmt.Printf("; marked permanently dead %s by %s\n", h.MarkedDead, h.MarkedDeadBy)
		} else {
			fmt.Println("; untouched")
		}
	}
}
