// Quickstart: generate a small simulated universe, run the full study
// pipeline, and print the headline findings — the paper's Figure 4 and
// the four takeaway percentages.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"permadead"
)

func main() {
	// Scale 0.06 ≈ a 600-link study; generates in about a second.
	report, err := permadead.Run(permadead.Options{Scale: 0.06, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report.LiveBreakdown.Total(), "permanently dead links measured.")
	fmt.Println()

	// Figure 4: what happens when you fetch them today?
	for _, cat := range report.LiveBreakdown.Categories() {
		fmt.Printf("  %-12s %4d  (%.1f%%)\n",
			cat, report.LiveBreakdown.Count(cat), report.LiveBreakdown.Fraction(cat)*100)
	}
	fmt.Println()

	// The paper's four headline findings.
	n := float64(report.N())
	fmt.Printf("dead links that in fact work today:       %.1f%%  (paper: 3%%)\n",
		float64(report.NumFunctional)/n*100)
	fmt.Printf("had a usable copy IABot's timeout missed: %.1f%%  (paper: 11%%)\n",
		float64(len(report.Pre200))/n*100)
	fmt.Printf("rescuable via validated redirects:        %.1f%%  (paper: 5%%)\n",
		float64(len(report.ValidRedirCopies))/n*100)
	fmt.Printf("typos that never worked:                  %.1f%%  (paper: ~5%%: 266+219 of 10k)\n",
		float64(report.SameDayErroneous+report.Typos)/n*100)
}
