// Archive-federation: the paper notes IABot can patch links with
// copies from the Wayback Machine "or one of more than 20 other web
// archives" (§2.1). This example federates a primary and a secondary
// archive into a Pool and measures what the secondary buys: copies the
// primary never captured, and resilience to slow primary lookups.
//
//	go run ./examples/archive-federation
package main

import (
	"fmt"
	"time"

	"permadead/internal/archive"
	"permadead/internal/simclock"
)

func main() {
	wayback := archive.New()
	archiveToday := archive.New()
	day := simclock.FromDate(2015, 6, 1)

	urls := make([]string, 0, 30)
	for i := 0; i < 30; i++ {
		url := fmt.Sprintf("http://paper%02d.simnews/story/%d.html", i, 1000+i)
		urls = append(urls, url)
		switch {
		case i%3 == 0:
			// Captured by both.
			wayback.Add(okSnap(url, day))
			archiveToday.Add(okSnap(url, day.Add(40)))
		case i%3 == 1:
			// Only the secondary archive got it.
			archiveToday.Add(okSnap(url, day.Add(15)))
		default:
			// Never archived anywhere.
		}
	}

	pool := archive.NewPool(
		archive.Member{Name: "wayback", Archive: wayback},
		archive.Member{Name: "archive.today", Archive: archiveToday},
	)

	gain := pool.CoverageGain(urls, simclock.FromDate(2022, 3, 1))
	fmt.Printf("links usable only via the secondary archive: %d of %d\n\n", gain, len(urls))

	// A per-link availability query falls through automatically.
	for _, url := range urls[:6] {
		res, ok, err := pool.Query(archive.AvailabilityQuery{
			URL: url, Want: day, Accept: archive.AcceptUsable,
		})
		switch {
		case err != nil:
			fmt.Printf("%-45s lookup error: %v\n", url, err)
		case ok:
			fmt.Printf("%-45s copy from %-13s (%s)\n", url, res.Member, res.Snapshot.Day)
		default:
			fmt.Printf("%-45s no copies anywhere\n", url)
		}
	}

	// Slow primary, fast secondary: the federation still answers
	// within the timeout.
	slow := urls[1] // captured only by the secondary
	wayback.SetLookupLatency(slow, 30*time.Second)
	res, ok, err := pool.Query(archive.AvailabilityQuery{
		URL: slow, Want: day, Accept: archive.AcceptUsable, Timeout: 2 * time.Second,
	})
	fmt.Printf("\nslow-primary lookup for %s:\n  ok=%v member=%s err=%v\n", slow, ok, res.Member, err)
	fmt.Printf("  federation-wide lookup cost: %v\n", pool.TotalLookupLatency(slow))
}

func okSnap(url string, day simclock.Day) archive.Snapshot {
	return archive.Snapshot{URL: url, Day: day, InitialStatus: 200, FinalStatus: 200}
}
