// Redirect-rescue: the paper's §4.2 idea end to end. Two archived
// redirections look identical to IABot — it conservatively ignores
// both — but cross-examining sibling URLs separates the valid per-page
// move from the erroneous mass redirect, and the valid one rescues a
// permanently dead link.
//
//	go run ./examples/redirect-rescue
package main

import (
	"fmt"

	"permadead/internal/archive"
	"permadead/internal/iabot"
	"permadead/internal/redircheck"
	"permadead/internal/simclock"
	"permadead/internal/waybackmedic"
	"permadead/internal/wikimedia"
)

func main() {
	arch := archive.New()
	capDay := simclock.FromDate(2014, 3, 1)

	// Case 1: main-spitze.de style — every old regional URL redirected
	// to its own new home. Unique targets.
	valid := "http://main-spitze.simnews/region/floersheim/9204093.htm"
	arch.Add(redirect(valid, capDay, "http://main-spitze.simnews/lokales/floersheim/index.htm"))
	arch.Add(redirect("http://main-spitze.simnews/region/floersheim/8811111.htm",
		capDay.Add(12), "http://main-spitze.simnews/lokales/floersheim/sport.htm"))
	arch.Add(redirect("http://main-spitze.simnews/region/hochheim/7700001.htm",
		capDay.Add(20), "http://main-spitze.simnews/lokales/hochheim/index.htm"))

	// Case 2: a news site that bounced every retired article to its
	// homepage. Shared target.
	mass := "http://daily-bugle.simnews/stories/2009/scandal.html"
	for i, p := range []string{"/stories/2009/scandal.html", "/stories/2009/merger.html", "/stories/2009/final.html"} {
		arch.Add(redirect("http://daily-bugle.simnews"+p, capDay.Add(i*7), "http://daily-bugle.simnews/"))
	}

	checker := redircheck.NewChecker(arch)
	for _, url := range []string{valid, mass} {
		snap := arch.Snapshots(url)[0]
		v := checker.Check(url, snap)
		fmt.Printf("%s\n  archived redirect → %s\n", url, snap.RedirectTo)
		fmt.Printf("  siblings compared: %d, sharing the target: %d\n", v.SiblingsCompared, v.SharedWith)
		if v.NonErroneous {
			fmt.Println("  verdict: VALID — usable as an archived copy (§4.2)")
		} else {
			fmt.Println("  verdict: erroneous mass redirect — rightly ignored")
		}
		fmt.Println()
	}

	// Now the rescue: a wiki where IABot already marked both links
	// permanently dead, and a redirect-aware WaybackMedic pass.
	wiki := wikimedia.NewWiki()
	for i, url := range []string{valid, mass} {
		title := fmt.Sprintf("Article %d", i+1)
		wiki.Create(title, simclock.FromDate(2010, 1, 1), "Editor",
			`<ref>{{cite web|url=`+url+`|title=Ref}}</ref>`)
		wiki.Edit(title, simclock.FromDate(2018, 1, 1), iabot.DefaultName, "Tagging dead links",
			`<ref>{{cite web|url=`+url+`|title=Ref|url-status=dead}} {{dead link|date=January 2018|bot=InternetArchiveBot}}</ref>
[[Category:`+iabot.Category+`]]`)
	}

	medic := waybackmedic.New(wiki, arch)
	medic.AcceptRedirects = true
	medic.Checker = checker
	st := medic.Run(simclock.FromDate(2022, 5, 1))

	fmt.Printf("WaybackMedic with redirect rescue: %d examined, %d rescued via redirect, %d unfixable\n",
		st.DeadLinksSeen, st.RedirectPatched, st.Unfixable)
	fmt.Println("\nrescued citation now reads:")
	fmt.Println(" ", wiki.Article("Article 1").Current().Text)
}

func redirect(url string, day simclock.Day, target string) archive.Snapshot {
	return archive.Snapshot{
		URL: url, Day: day,
		InitialStatus: 301, FinalStatus: 200, RedirectTo: target,
	}
}
