// Archive-coverage: the paper's §5.2 spatial analysis on one host.
// Builds an archive with uneven coverage of a news site, then asks —
// for a never-archived URL — whether the coverage gap is page-
// specific, directory-wide, or host-wide, and whether the URL looks
// like a typo of an archived sibling.
//
//	go run ./examples/archive-coverage
package main

import (
	"fmt"

	"permadead/internal/archive"
	"permadead/internal/simclock"
	"permadead/internal/urlutil"
)

func main() {
	arch := archive.New()
	day := simclock.FromDate(2014, 6, 1)

	// The sports section is richly archived (a bulk region stands in
	// for thousands of individually captured articles)...
	arch.AddBulkCoverage(archive.BulkRegion{
		Host:      "www.lnr-gazette.simnews",
		DirPrefix: "/rugby/",
		Count:     12000,
		FirstDay:  simclock.FromDate(2008, 1, 1),
		LastDay:   simclock.FromDate(2021, 1, 1),
		Seed:      7,
	})
	// ...and a few specific pages were captured explicitly.
	for i, path := range []string{
		"/rugby/top-14-histoire-26-mai-1984.html",
		"/rugby/top-14-histoire-27-mai-1990.html",
		"/about/contact.html",
	} {
		arch.Add(archive.Snapshot{
			URL:           "http://www.lnr-gazette.simnews" + path,
			Day:           day.Add(i * 30),
			InitialStatus: 200,
			FinalStatus:   200,
		})
	}

	// The permanently dead link — note the English "may" where the
	// French site spells "mai" (the paper's lnr.fr example).
	dead := "http://www.lnr-gazette.simnews/rugby/top-14-histoire-26-may-1984.html"

	fmt.Println("never-archived URL:", dead)
	fmt.Printf("  200-status copies in same directory: %d\n", arch.CountInDirectory(dead))
	fmt.Printf("  200-status copies on same hostname:  %d\n", arch.CountOnHostname(dead))

	// §5.2's typo probe: exactly one archived URL at edit distance 1?
	domain := urlutil.Domain(dead)
	matches := []string{}
	for _, cand := range arch.ArchivedURLsUnderDomain(domain, 20000) {
		if urlutil.EditDistanceAtMost(strip(cand), strip(dead), 1) &&
			urlutil.EditDistance(strip(cand), strip(dead)) == 1 {
			matches = append(matches, cand)
		}
	}
	switch len(matches) {
	case 0:
		fmt.Println("  no edit-distance-1 archived sibling: not a typo")
	case 1:
		fmt.Println("  unique edit-distance-1 archived sibling found:")
		fmt.Println("    ", matches[0])
		fmt.Println("  → the dead link is almost certainly a typo of it (§5.2)")
	default:
		fmt.Printf("  %d edit-distance-1 siblings: ambiguous (likely a numeric page id)\n", len(matches))
	}

	// Contrast with a host-wide coverage gap.
	ghost := "http://forgotten.simtest/articles/story.html"
	fmt.Println("\nnever-archived URL on an unarchived host:", ghost)
	fmt.Printf("  directory-level copies: %d, hostname-level copies: %d\n",
		arch.CountInDirectory(ghost), arch.CountOnHostname(ghost))
	fmt.Println("  → the whole site was never archived; nothing to patch with")
}

func strip(url string) string {
	if i := len("http://"); len(url) > i && url[:i] == "http://" {
		return url[i:]
	}
	if i := len("https://"); len(url) > i && url[:i] == "https://" {
		return url[i:]
	}
	return url
}
